// Shared helpers for the experiment binaries: table formatting and scale
// knobs. Every bench prints the same rows/series as the paper's table or
// figure it regenerates, at a machine-appropriate default scale
// (MVCC_SCALE, MVCC_SECONDS, MVCC_WARMUP_SECONDS, MVCC_READERS environment
// variables scale up).
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "mvcc/alloc/pool.h"
#include "mvcc/common/env.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/base.h"

namespace mvcc::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// Prints one row of left-aligned cells. `width` is a minimum: a cell wider
// than it gets its own width plus a separating space, so long values never
// jam into the next column (they may still stagger against other rows —
// use Table when the whole table is known up front).
inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const auto& c : cells) {
    const int w = std::max(width, static_cast<int>(c.size()) + 1);
    std::printf("%-*s", w, c.c_str());
  }
  std::printf("\n");
}

// Collects a header plus rows and prints them with every column as wide as
// its widest cell — the alignment print_row cannot guarantee row by row.
class Table {
 public:
  explicit Table(std::vector<std::string> header, int min_width = 12)
      : min_width_(min_width) {
    rows_.push_back(std::move(header));
  }

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<int> widths;
    for (const auto& row : rows_) {
      if (widths.size() < row.size()) widths.resize(row.size(), min_width_);
      for (std::size_t i = 0; i < row.size(); ++i) {
        widths[i] =
            std::max(widths[i], static_cast<int>(row[i].size()) + 2);
      }
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s", widths[i], row[i].c_str());
      }
      std::printf("\n");
    }
  }

 private:
  int min_width_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting with no truncation: the buffer is
// sized by a measuring pass, so any magnitude round-trips intact.
inline std::string fmt(double v, int precision = 3) {
  const int n = std::snprintf(nullptr, 0, "%.*f", precision, v);
  std::string s(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::snprintf(s.data(), s.size() + 1, "%.*f", precision, v);
  return s;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

// Benchmark wall-clock budget per measured cell, seconds.
inline double cell_seconds() { return env_double("MVCC_SECONDS", 0.4); }

// Warm-up run before each measured cell of a duration-based steady-state
// bench (ScaleStore-driver style): threads run the full workload, nothing
// is recorded until the warm-up elapses.
inline double warmup_seconds() {
  return env_double("MVCC_WARMUP_SECONDS", 0.1);
}

// Reader thread count for the Table 2 / Figure 6 harness (paper: 140).
inline int reader_threads() {
  return static_cast<int>(env_long("MVCC_READERS", 3));
}

// Per-process observability session for the experiment binaries: construct
// one in main() around the measured work. Under MVCC_STATS=1 it registers
// every subsystem's footprint probes and, when MVCC_SAMPLE_MS > 0, starts
// the background sampler; on destruction it stops the sampler, writes the
// footprint CSV (MVCC_SAMPLE_OUT, default footprint.csv), and dumps the
// event trace to MVCC_TRACE when tracing is active. Stats off: all no-ops —
// no threads, no files.
class ObsSession {
 public:
  ObsSession() {
    if (!obs::enabled()) return;
    alloc::register_alloc_probes();
    ftree::register_footprint_probes();
    vm::register_vm_probes();
    txn::register_txn_probes();
    const long period_ms = env_long("MVCC_SAMPLE_MS", 0);
    if (period_ms > 0) {
      sampling_ = obs::Sampler::instance().start(period_ms);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (sampling_) {
      auto& sampler = obs::Sampler::instance();
      sampler.stop();
      const std::string out = env_string("MVCC_SAMPLE_OUT", "footprint.csv");
      if (sampler.dump_csv_to_file(out)) {
        std::fprintf(stderr, "[obs] footprint samples (%zu rows) -> %s\n",
                     sampler.rows().size(), out.c_str());
      }
    }
    if (obs::trace_on() && !obs::trace_path().empty()) {
      auto& tracer = obs::Tracer::instance();
      if (tracer.dump_json_to_file(obs::trace_path())) {
        std::fprintf(stderr, "[obs] trace (%llu events) -> %s\n",
                     static_cast<unsigned long long>(tracer.events_emitted()),
                     obs::trace_path().c_str());
      }
    }
  }

 private:
  bool sampling_ = false;
};

}  // namespace mvcc::bench
