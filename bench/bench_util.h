// Shared helpers for the experiment binaries: table formatting and scale
// knobs. Every bench prints the same rows/series as the paper's table or
// figure it regenerates, at a machine-appropriate default scale
// (MVCC_SCALE, MVCC_SECONDS, MVCC_READERS environment variables scale up).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mvcc/common/env.h"

namespace mvcc::bench {

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

// Benchmark wall-clock budget per measured cell, seconds.
inline double cell_seconds() { return env_double("MVCC_SECONDS", 0.4); }

// Reader thread count for the Table 2 / Figure 6 harness (paper: 140).
inline int reader_threads() {
  return static_cast<int>(env_long("MVCC_READERS", 3));
}

}  // namespace mvcc::bench
