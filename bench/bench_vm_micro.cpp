// Microbenchmarks supporting Table 1 / Theorem 3.4: per-operation cost of
// acquire / release / set for each VM algorithm, plus the read-transaction
// round trip (acquire+release), single-threaded and with a concurrent
// writer in the background.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "mvcc/vm/base.h"
#include "mvcc/vm/ep.h"
#include "mvcc/vm/hp.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/vm/rcu.h"

namespace {

using namespace mvcc::vm;

struct Payload {
  std::uint64_t seq;
};

// The process count used for all VM micro benches; PSWF costs scale with P.
constexpr int kP = 8;

template <typename VM>
void BM_AcquireRelease(benchmark::State& state) {
  Payload init{0};
  VM vm(kP, &init);
  for (auto _ : state) {
    Payload* v = vm.acquire(0);
    benchmark::DoNotOptimize(v);
    auto rel = vm.release(0);
    benchmark::DoNotOptimize(rel.size());
  }
  (void)vm.shutdown_drain();
}

template <typename VM>
void BM_SetCycle(benchmark::State& state) {
  // Full writer cycle: acquire + set + release (the version payloads are
  // recycled between two statics, so no allocation is measured).
  Payload a{0}, b{1};
  VM vm(kP, &a);
  bool use_b = true;
  for (auto _ : state) {
    vm.acquire(0);
    benchmark::DoNotOptimize(vm.set(0, use_b ? &b : &a));
    auto rel = vm.release(0);
    benchmark::DoNotOptimize(rel.size());
    use_b = !use_b;
  }
  (void)vm.shutdown_drain();
}

template <typename VM>
void BM_AcquireReleaseWithWriter(benchmark::State& state) {
  // Reader-side cost while a writer continuously commits: measures the
  // delay-freedom of reads under write traffic.
  static Payload pool[3];
  VM vm(kP, &pool[0]);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 1;
    while (!stop.load(std::memory_order_acquire)) {
      vm.acquire(1);
      vm.set(1, &pool[i % 3]);
      (void)vm.release(1);
      ++i;
    }
  });
  for (auto _ : state) {
    Payload* v = vm.acquire(0);
    benchmark::DoNotOptimize(v);
    auto rel = vm.release(0);
    benchmark::DoNotOptimize(rel.size());
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  (void)vm.shutdown_drain();
}

}  // namespace

BENCHMARK_TEMPLATE(BM_AcquireRelease, PswfVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireRelease, PslfVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireRelease, HpVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireRelease, EpVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireRelease, RcuVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireRelease, BaseVersionManager<Payload>);

BENCHMARK_TEMPLATE(BM_SetCycle, PswfVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_SetCycle, PslfVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_SetCycle, HpVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_SetCycle, EpVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_SetCycle, RcuVersionManager<Payload>);
// Base is omitted here: it parks every replaced version on a leak list by
// design, which would grow without bound across benchmark iterations.

BENCHMARK_TEMPLATE(BM_AcquireReleaseWithWriter, PswfVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireReleaseWithWriter, PslfVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireReleaseWithWriter, HpVersionManager<Payload>);
BENCHMARK_TEMPLATE(BM_AcquireReleaseWithWriter, EpVersionManager<Payload>);

BENCHMARK_MAIN();
