// Reproduces TABLE 2 of the paper: query throughput (Mop/s), update
// throughput (Mop/s) and the maximum number of live (uncollected) versions,
// for each Version Maintenance algorithm (Base / PSWF / PSLF / HP / EP /
// RCU) under the single-writer multi-reader range-sum workload, at query
// granularity nq and update granularity nu in {10, 1000}^2.
//
// Paper setup: 72-core machine, 140 reader threads, initial tree 1e8, 15 s
// per cell. Defaults here are laptop-scale; scale with:
//   MVCC_READERS=140 MVCC_SCALE=1000 MVCC_SECONDS=15 ./bench_table2
#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "mvcc/vm/base.h"
#include "mvcc/vm/ep.h"
#include "mvcc/vm/hp.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/vm/rcu.h"
#include "mvcc/workload/range_workload.h"

namespace {

using namespace mvcc;
using bench::fmt;
using bench::fmt_int;

struct CellResult {
  double query_mops;
  double update_mops;
  std::int64_t max_versions;
};

template <template <typename> class VMImpl>
CellResult run_cell(int nq, int nu) {
  workload::RangeWorkloadConfig cfg;
  cfg.readers = bench::reader_threads();
  cfg.initial_size =
      static_cast<std::uint64_t>(100000 * env_scale());
  cfg.nq = nq;
  cfg.nu = nu;
  cfg.duration_sec = bench::cell_seconds();
  auto r = workload::run_range_workload<VMImpl>(cfg);
  return {r.query_mops(), r.update_mops(), r.max_live_versions};
}

struct RowSet {
  CellResult base, pswf, pslf, hp, ep, rcu;
};

RowSet run_setting(int nq, int nu) {
  RowSet rs;
  rs.base = run_cell<vm::BaseVersionManager>(nq, nu);
  rs.pswf = run_cell<vm::PswfVersionManager>(nq, nu);
  rs.pslf = run_cell<vm::PslfVersionManager>(nq, nu);
  rs.hp = run_cell<vm::HpVersionManager>(nq, nu);
  rs.ep = run_cell<vm::EpVersionManager>(nq, nu);
  rs.rcu = run_cell<vm::RcuVersionManager>(nq, nu);
  return rs;
}

}  // namespace

int main() {
  const int settings[4][2] = {{10, 10}, {10, 1000}, {1000, 10}, {1000, 1000}};
  RowSet rows[4];
  for (int i = 0; i < 4; ++i) {
    std::fprintf(stderr, "table2: running setting nq=%d nu=%d...\n",
                 settings[i][0], settings[i][1]);
    rows[i] = run_setting(settings[i][0], settings[i][1]);
  }

  bench::print_header(
      "Table 2: query/update throughput and live versions per VM algorithm");
  std::printf("(readers=%d, scale=%g, %gs per cell; paper: 140 readers, "
              "1e8 keys, 15s)\n",
              mvcc::bench::reader_threads(), mvcc::env_scale(),
              mvcc::bench::cell_seconds());

  bench::print_row({"nq", "nu", "Base", "PSWF", "PSLF", "HP", "EP", "RCU"});
  std::printf("--- Query Throughput (Mop/s)\n");
  for (int i = 0; i < 4; ++i) {
    bench::print_row({fmt_int(settings[i][0]), fmt_int(settings[i][1]),
                      fmt(rows[i].base.query_mops), fmt(rows[i].pswf.query_mops),
                      fmt(rows[i].pslf.query_mops), fmt(rows[i].hp.query_mops),
                      fmt(rows[i].ep.query_mops), fmt(rows[i].rcu.query_mops)});
  }
  std::printf("--- Update Throughput (Mop/s)\n");
  for (int i = 0; i < 4; ++i) {
    bench::print_row(
        {fmt_int(settings[i][0]), fmt_int(settings[i][1]),
         fmt(rows[i].base.update_mops), fmt(rows[i].pswf.update_mops),
         fmt(rows[i].pslf.update_mops), fmt(rows[i].hp.update_mops),
         fmt(rows[i].ep.update_mops), fmt(rows[i].rcu.update_mops)});
  }
  std::printf("--- Max # Versions\n");
  for (int i = 0; i < 4; ++i) {
    bench::print_row(
        {fmt_int(settings[i][0]), fmt_int(settings[i][1]), "-",
         fmt_int(rows[i].pswf.max_versions), fmt_int(rows[i].pslf.max_versions),
         fmt_int(rows[i].hp.max_versions), fmt_int(rows[i].ep.max_versions),
         fmt_int(rows[i].rcu.max_versions)});
  }
  return 0;
}
