// Reproduces TABLE 3 of the paper: the inverted-index application in the
// dynamic setting. With p threads generating queries and the writer applying
// document batches (each batch one atomic write transaction applied with
// parallel tree union), run updates and queries simultaneously for a fixed
// wall-clock window (Tu+q); then run the same number of updates alone (Tu)
// and queries alone (Tq). The paper's claim: Tu + Tq ~ Tu+q, i.e., running
// them concurrently costs almost nothing.
//
// Paper corpus: Wikipedia 2016 (8.13M docs, 1.6e9 pairs); here a synthetic
// Zipf corpus of the same shape (see DESIGN.md 3.8). Scale with MVCC_SCALE.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mvcc/common/timing.h"
#include "mvcc/invidx/corpus.h"
#include "mvcc/invidx/inverted_index.h"
#include "mvcc/vm/pswf.h"

namespace {

using namespace mvcc;
using invidx::Document;
using invidx::InvertedIndex;
using invidx::Term;

struct Workload {
  std::vector<Document> preload;
  std::vector<std::vector<Document>> update_batches;
  std::vector<std::pair<Term, Term>> queries;
};

Workload make_workload() {
  invidx::CorpusConfig cc;
  cc.num_docs = static_cast<std::uint64_t>(4000 * env_scale());
  cc.vocabulary = static_cast<std::uint64_t>(20000 * env_scale());
  auto corpus = invidx::make_corpus(cc);

  Workload w;
  const std::size_t preload_count = corpus.size() / 2;
  w.preload.assign(corpus.begin(),
                   corpus.begin() + static_cast<long>(preload_count));
  const std::size_t batch_size = 16;
  for (std::size_t i = preload_count; i < corpus.size(); i += batch_size) {
    const std::size_t end = std::min(i + batch_size, corpus.size());
    w.update_batches.emplace_back(corpus.begin() + static_cast<long>(i),
                                  corpus.begin() + static_cast<long>(end));
  }
  w.queries = invidx::make_query_terms(
      cc, static_cast<std::uint64_t>(20000 * env_scale()));
  return w;
}

using Index = InvertedIndex<vm::PswfVersionManager>;

struct Run {
  double tu = 0;   // update-only time
  double tq = 0;   // query-only time
  double tuq = 0;  // simultaneous time
};

// Run `nbatches` update batches on the writer slot (cyclically over the
// prepared batch list, mirroring the concurrent phase).
void run_updates(Index& idx, const Workload& w, std::size_t nbatches,
                 int slot) {
  for (std::size_t i = 0; i < nbatches; ++i) {
    idx.add_documents(slot, w.update_batches[i % w.update_batches.size()]);
  }
}

// Run `nqueries` and-queries round-robin over `threads` reader slots.
void run_queries(Index& idx, const Workload& w, std::size_t nqueries,
                 int threads) {
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= nqueries) return;
        const auto& [a, b] = w.queries[i % w.queries.size()];
        volatile std::size_t sink = idx.and_query(t, a, b, 10).size();
        (void)sink;
      }
    });
  }
  for (auto& t : ts) t.join();
}

Run run_setting(const Workload& w, int query_threads) {
  Run out;
  const int writer_slot = query_threads;

  // Phase 1: simultaneous updates and queries for a fixed window.
  std::size_t updates_done = 0;
  std::size_t queries_done = 0;
  {
    Index idx(query_threads + 1);
    idx.add_documents(writer_slot, w.preload);
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> u{0};
    std::atomic<std::size_t> q{0};
    Timer timer;
    std::thread writer([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        idx.add_documents(writer_slot,
                          w.update_batches[i % w.update_batches.size()]);
        ++i;
        u.store(i, std::memory_order_relaxed);
      }
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < query_threads; ++t) {
      readers.emplace_back([&, t] {
        std::size_t i = static_cast<std::size_t>(t);
        while (!stop.load(std::memory_order_acquire)) {
          const auto& [a, b] = w.queries[i % w.queries.size()];
          volatile std::size_t sink = idx.and_query(t, a, b, 10).size();
          (void)sink;
          i += static_cast<std::size_t>(query_threads);
          q.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(bench::cell_seconds() * 2));
    stop.store(true, std::memory_order_release);
    writer.join();
    for (auto& t : readers) t.join();
    out.tuq = timer.seconds();
    updates_done = u.load();
    queries_done = q.load();
  }

  // Phase 2: the same number of updates, alone.
  {
    Index idx(query_threads + 1);
    idx.add_documents(writer_slot, w.preload);
    Timer timer;
    run_updates(idx, w, updates_done, writer_slot);
    out.tu = timer.seconds();
  }

  // Phase 3: the same number of queries, alone (all threads).
  {
    Index idx(query_threads + 1);
    idx.add_documents(writer_slot, w.preload);
    Timer timer;
    run_queries(idx, w, queries_done, query_threads);
    out.tq = timer.seconds();
  }
  return out;
}

}  // namespace

int main() {
  const Workload w = make_workload();
  bench::print_header(
      "Table 3: inverted index -- concurrent updates+queries vs separate");
  std::printf("(synthetic Zipf corpus; paper: Wikipedia, 144 threads, 30s "
              "windows, p in {10,20,40,80})\n");
  bench::print_row({"p", "Tu", "Tq", "Tu+Tq", "Tu+q"});
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<int> ps;
  for (int p = 1; p <= static_cast<int>(hw); p *= 2) ps.push_back(p);
  for (int p : ps) {
    std::fprintf(stderr, "table3: p=%d query threads...\n", p);
    Run r = run_setting(w, p);
    bench::print_row({std::to_string(p), bench::fmt(r.tu, 2),
                      bench::fmt(r.tq, 2), bench::fmt(r.tu + r.tq, 2),
                      bench::fmt(r.tuq, 2)});
  }
  std::printf("shape check: Tu + Tq should be close to Tu+q (the paper's "
              "finding that concurrency is nearly free)\n");
  return 0;
}
