// Reproduces FIGURE 7 of the paper: YCSB workloads A (50/50 read/update),
// B (95/5) and C (100/0 reads) over six concurrent maps:
//
//   ours        functional tree + PSWF-multiversioning + batched writer
//   cow-nobatch the same tree without batching (OpenBW stand-in / ablation)
//   skiplist    lock-free skiplist
//   ext-bst     lock-free external BST (Chromatic-tree stand-in)
//   b+tree      lock-coupling B+tree
//   hash        sharded hash map (Masstree stand-in)
//
// Paper setup: 5e7 keys, 1e7 ops, 144 hyperthreads, GC off. Defaults are
// laptop scale; MVCC_SCALE multiplies keys and ops, MVCC_THREADS sets the
// worker count. Expected shape: "ours" at or above the best baseline on all
// three mixes (the paper reports +20%-300%).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mvcc/baselines/bplustree.h"
#include "mvcc/baselines/cow_nobatch.h"
#include "mvcc/baselines/extbst.h"
#include "mvcc/baselines/sharded_hash.h"
#include "mvcc/baselines/skiplist.h"
#include "mvcc/common/timing.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/base.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/workload/ycsb.h"

namespace {

using namespace mvcc;
using workload::YcsbOp;
using workload::YcsbSpec;
using workload::YcsbStream;
using workload::ZipfGenerator;

struct Config {
  std::uint64_t keys;
  std::uint64_t total_ops;
  int threads;
};

// Generic runner for the plain concurrent-map interface (upsert/find).
template <typename M>
double run_plain(M& m, const YcsbSpec& spec, const ZipfGenerator& zipf,
                 const Config& cfg) {
  const auto dataset = workload::ycsb_dataset(cfg.keys);
  for (const auto& [k, v] : dataset) m.upsert(k, v);

  std::atomic<std::uint64_t> sink{0};
  const std::uint64_t per_thread = cfg.total_ops / cfg.threads;
  Timer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbStream stream(spec, zipf, 1000 + static_cast<std::uint64_t>(t));
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        auto op = stream.next();
        if (op.type == YcsbOp::kRead) {
          auto v = m.find(op.key);
          local += v.has_value() ? *v : 0;
        } else {
          m.upsert(op.key, i);
        }
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double secs = timer.seconds();
  return static_cast<double>(per_thread) * cfg.threads / secs / 1e6;
}

// Runner for our batched multiversion map: reads are read transactions,
// updates are submissions to the batching writer; the clock includes the
// final flush so every update is durable within the measured window.
//
// The paper's Figure 7 turns GC off for every structure ("we are interested
// in the performance of the trees and not the GC"), which for ours means
// reads go straight to the current root with no version maintenance: that is
// the Base VM. The PSWF variant ("ours+gc") is reported as an extra column
// to show the full-system cost the paper's Table 2 measures separately.
template <template <typename> class VMImpl>
double run_ours(const YcsbSpec& spec, const ZipfGenerator& zipf,
                const Config& cfg) {
  using BMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                ftree::NoAug<std::uint64_t, std::uint64_t>,
                                VMImpl>;
  auto dataset = workload::ycsb_dataset(cfg.keys);
  BMap map(cfg.threads, BMap::Map::from_entries(std::move(dataset)),
           /*buffer_capacity=*/1 << 14);

  std::atomic<std::uint64_t> sink{0};
  const std::uint64_t per_thread = cfg.total_ops / cfg.threads;
  Timer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbStream stream(spec, zipf, 1000 + static_cast<std::uint64_t>(t));
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        auto op = stream.next();
        if (op.type == YcsbOp::kRead) {
          auto v = map.get(t, op.key);
          local += v.has_value() ? *v : 0;
        } else {
          map.submit(t, txn::BatchOp::kUpsert, op.key, i);
        }
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  map.flush_all();
  const double secs = timer.seconds();
  return static_cast<double>(per_thread) * cfg.threads / secs / 1e6;
}

}  // namespace

int main() {
  Config cfg;
  cfg.keys = static_cast<std::uint64_t>(200000 * env_scale());
  cfg.total_ops = static_cast<std::uint64_t>(400000 * env_scale());
  cfg.threads = static_cast<int>(env_long(
      "MVCC_THREADS",
      std::max(2u, std::thread::hardware_concurrency())));

  ZipfGenerator zipf(cfg.keys, 0.99);
  const YcsbSpec specs[] = {workload::kYcsbA, workload::kYcsbB,
                            workload::kYcsbC};

  bench::print_header("Figure 7: YCSB throughput (Mop/s), six structures");
  std::printf("(keys=%llu ops=%llu threads=%d; paper: 5e7 keys, 1e7 ops, 144 "
              "threads)\n",
              static_cast<unsigned long long>(cfg.keys),
              static_cast<unsigned long long>(cfg.total_ops), cfg.threads);
  bench::print_row({"workload", "ours", "ours+gc", "cow-nobatch", "skiplist",
                    "ext-bst", "b+tree", "hash"},
                   14);

  for (const auto& spec : specs) {
    std::fprintf(stderr, "fig7: workload %s...\n", spec.name.data());
    const double ours = run_ours<vm::BaseVersionManager>(spec, zipf, cfg);
    const double ours_gc = run_ours<vm::PswfVersionManager>(spec, zipf, cfg);
    double cow, sl, bst, bpt, hash;
    {
      baselines::CowTreeNoBatch m;
      cow = run_plain(m, spec, zipf, cfg);
    }
    {
      baselines::LockFreeSkipList m;
      sl = run_plain(m, spec, zipf, cfg);
    }
    {
      baselines::ExternalBst m;
      bst = run_plain(m, spec, zipf, cfg);
    }
    {
      baselines::BPlusTree m;
      bpt = run_plain(m, spec, zipf, cfg);
    }
    {
      baselines::ShardedHashMap m(cfg.keys * 2);
      hash = run_plain(m, spec, zipf, cfg);
    }
    bench::print_row({std::string(spec.name), bench::fmt(ours),
                      bench::fmt(ours_gc), bench::fmt(cow), bench::fmt(sl),
                      bench::fmt(bst), bench::fmt(bpt), bench::fmt(hash)},
                     14);
  }
  return 0;
}
