// Reproduces FIGURE 7 of the paper: YCSB workloads A (50/50 read/update),
// B (95/5) and C (100/0 reads) over six concurrent maps:
//
//   ours        functional tree + PSWF-multiversioning + batched writer
//   cow-nobatch the same tree without batching (OpenBW stand-in / ablation)
//   skiplist    lock-free skiplist
//   ext-bst     lock-free external BST (Chromatic-tree stand-in)
//   b+tree      lock-coupling B+tree
//   hash        sharded hash map (Masstree stand-in)
//
// Paper setup: 5e7 keys, 1e7 ops, 144 hyperthreads, GC off. Defaults are
// laptop scale; MVCC_SCALE multiplies the key space, MVCC_THREADS sets the
// worker count. Expected shape: "ours" at or above the best baseline on all
// three mixes (the paper reports +20%-300%).
//
// Every cell is a duration-based steady-state run: workers start, the
// structure warms for MVCC_WARMUP_SECONDS, then per-thread op counters are
// snapshotted and the MVCC_SECONDS window is measured. Every 64th op inside
// the window is latency-sampled into log-bucketed histograms, reported as a
// second table of p50/p99/p999 read and update-op quantiles (for "ours" the
// update op is the async submit; sync commit latency is bench_batching's
// column and the txn/commit_latency_ns registry metric).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mvcc/baselines/bplustree.h"
#include "mvcc/baselines/cow_nobatch.h"
#include "mvcc/baselines/extbst.h"
#include "mvcc/baselines/sharded_hash.h"
#include "mvcc/baselines/skiplist.h"
#include "mvcc/common/timing.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/batching.h"
#include "mvcc/txn/sharded.h"
#include "mvcc/vm/base.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/workload/ycsb.h"

namespace {

using namespace mvcc;
using workload::YcsbOp;
using workload::YcsbSpec;
using workload::YcsbStream;
using workload::ZipfGenerator;

struct CellConfig {
  std::uint64_t keys;
  int threads;
  double warmup;
  double seconds;
};

struct CellResult {
  double mops = 0;
  double read_us[3] = {0, 0, 0};  // p50, p99, p999
  double upd_us[3] = {0, 0, 0};
};

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> v{0};
};

// Steady-state harness shared by every structure. Adapter provides
// read(t, key) -> sink contribution and update(t, key, val); finish() runs
// after the workers join, outside the measured window.
template <class Adapter>
CellResult run_cell(Adapter& ad, const YcsbSpec& spec,
                    const ZipfGenerator& zipf, const CellConfig& cfg,
                    const std::string& label) {
  constexpr std::uint64_t kSampleMask = 63;  // every 64th op in the window
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<PaddedCount> counts(static_cast<std::size_t>(cfg.threads));
  obs::LatencyHistogram read_lat;
  obs::LatencyHistogram upd_lat;

  // Opened before the workers spawn: perf inherit only covers threads
  // created after the counters exist. Reports perf/<label>/* on scope exit.
  obs::PerfCell perf(label);
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      YcsbStream stream(spec, zipf, 1000 + static_cast<std::uint64_t>(t));
      std::uint64_t local = 0;
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto op = stream.next();
        const bool sample = measuring.load(std::memory_order_relaxed) &&
                            (ops & kSampleMask) == kSampleMask;
        if (op.type == YcsbOp::kRead) {
          if (sample) {
            Timer tm;
            local += ad.read(t, op.key);
            read_lat.record(tm.nanos());
          } else {
            local += ad.read(t, op.key);
          }
        } else {
          if (sample) {
            Timer tm;
            ad.update(t, op.key, ops);
            upd_lat.record(tm.nanos());
          } else {
            ad.update(t, op.key, ops);
          }
        }
        ++ops;
        counts[static_cast<std::size_t>(t)].v.store(
            ops, std::memory_order_relaxed);
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }

  auto total = [&] {
    std::uint64_t s = 0;
    for (const auto& c : counts) s += c.v.load(std::memory_order_relaxed);
    return s;
  };
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.warmup));
  measuring.store(true, std::memory_order_relaxed);
  obs::Delta window_ops(total);
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  const std::uint64_t ops = window_ops.delta();
  const double secs = timer.seconds();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  ad.finish();

  CellResult r;
  r.mops = static_cast<double>(ops) / secs / 1e6;
  const double qs[3] = {0.50, 0.99, 0.999};
  for (int i = 0; i < 3; ++i) {
    r.read_us[i] = read_lat.quantile(qs[i]) / 1e3;
    r.upd_us[i] = upd_lat.quantile(qs[i]) / 1e3;
  }
  return r;
}

// Plain concurrent-map interface (upsert/find).
template <typename M>
struct PlainAdapter {
  M& m;
  std::uint64_t read(int, std::uint64_t k) {
    auto v = m.find(k);
    return v.has_value() ? *v : 0;
  }
  void update(int, std::uint64_t k, std::uint64_t v) { m.upsert(k, v); }
  void finish() {}
};

template <typename M>
CellResult run_plain(M& m, const YcsbSpec& spec, const ZipfGenerator& zipf,
                     const CellConfig& cfg, const std::string& label) {
  const auto dataset = workload::ycsb_dataset(cfg.keys);
  for (const auto& [k, v] : dataset) m.upsert(k, v);
  PlainAdapter<M> ad{m};
  return run_cell(ad, spec, zipf, cfg, label);
}

// Our batched multiversion map: reads acquire the current version through
// the VM, updates are submissions to the batching writer; the final flush
// runs outside the window (at steady state admission control ties the
// submit rate to the commit rate, so counting submits is fair).
//
// The paper's Figure 7 turns GC off for every structure ("we are interested
// in the performance of the trees and not the GC"), which for ours means
// reads go straight to the current root with no version maintenance: that is
// the Base VM. The PSWF variant ("ours+gc") is reported as an extra column
// to show the full-system cost the paper's Table 2 measures separately.
template <template <typename> class VMImpl>
CellResult run_ours(const YcsbSpec& spec, const ZipfGenerator& zipf,
                    const CellConfig& cfg, const std::string& label) {
  using BMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                ftree::NoAug<std::uint64_t, std::uint64_t>,
                                VMImpl>;
  auto dataset = workload::ycsb_dataset(cfg.keys);
  BMap map(cfg.threads, BMap::Map::from_entries(std::move(dataset)),
           /*buffer_capacity=*/1 << 14);

  struct Adapter {
    BMap& m;
    std::uint64_t read(int t, std::uint64_t k) {
      auto v = m.get(t, k);
      return v.has_value() ? *v : 0;
    }
    void update(int t, std::uint64_t k, std::uint64_t v) {
      m.submit(t, txn::BatchOp::kUpsert, k, v);
    }
    void finish() { m.flush_all(); }
  } ad{map};
  return run_cell(ad, spec, zipf, cfg, label);
}

// --- Sharded multi-writer scale-out (ROADMAP's "millions of users" lever)
//
// YCSB A over txn::ShardedMap at increasing shard counts, driven by the
// ScaleStore-style PARTITIONED driver: each producer runs a pre-generated
// op stream over its own contiguous key partition (Zipfian within the
// partition, zero generation cost in the loop), updates are async submits,
// and every 8192nd op takes a cross-shard snapshot and reads through it,
// exercising the version-vector validate-retry path under load. The
// update column is COMMITTED ops (the flattener ceiling sharding lifts),
// not submits; expected shape on a multi-core host is upd_mops rising
// monotonically with the shard count.
struct ShardedCell {
  double mops = 0;      // total issued ops (reads + update submits)
  double upd_mops = 0;  // committed updates across shards
  std::uint64_t snapshots = 0;
  std::uint64_t snap_retries = 0;
};

ShardedCell run_sharded(int nshards, const CellConfig& cfg) {
  using SMap =
      txn::ShardedMap<std::uint64_t, std::uint64_t,
                      ftree::NoAug<std::uint64_t, std::uint64_t>,
                      vm::PswfVersionManager>;
  constexpr std::uint64_t kSnapshotMask = 8191;  // every 8192nd op
  workload::PartitionedYcsb part(workload::kYcsbA, cfg.keys, cfg.threads);
  std::vector<std::vector<YcsbOp>> streams;
  streams.reserve(static_cast<std::size_t>(cfg.threads));
  for (int t = 0; t < cfg.threads; ++t) {
    streams.push_back(part.stream(t, std::size_t{1} << 15));
  }
  obs::PerfCell perf("sharded/s" + std::to_string(nshards));
  SMap map(cfg.threads, workload::ycsb_dataset(cfg.keys), nshards);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<PaddedCount> counts(static_cast<std::size_t>(cfg.threads));
  std::vector<std::thread> threads;
  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      const auto& stream = streams[static_cast<std::size_t>(t)];
      std::uint64_t local = 0;
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const YcsbOp& op = stream[ops % stream.size()];
        if ((ops & kSnapshotMask) == kSnapshotMask) {
          auto snap = map.snapshot(t);
          const std::uint64_t* v = snap.find(op.key);
          local += v != nullptr ? *v : 0;
        } else if (op.type == YcsbOp::kRead) {
          auto v = map.get(t, op.key);
          local += v.has_value() ? *v : 0;
        } else {
          map.submit(t, txn::BatchOp::kUpsert, op.key, ops);
        }
        ++ops;
        counts[static_cast<std::size_t>(t)].v.store(
            ops, std::memory_order_relaxed);
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }

  auto total = [&] {
    std::uint64_t s = 0;
    for (const auto& c : counts) s += c.v.load(std::memory_order_relaxed);
    return s;
  };
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.warmup));
  obs::Delta issued(total);
  obs::Delta committed([&map] { return map.ops_committed(); });
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  const std::uint64_t ops = issued.delta();
  const std::uint64_t upd = committed.delta();
  const double secs = timer.seconds();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  map.flush_all();

  ShardedCell r;
  r.mops = static_cast<double>(ops) / secs / 1e6;
  r.upd_mops = static_cast<double>(upd) / secs / 1e6;
  r.snapshots = map.snapshots_taken();
  r.snap_retries = map.snapshot_retries();
  return r;
}

}  // namespace

int main() {
  bench::ObsSession obs_session;
  CellConfig cfg;
  cfg.keys = static_cast<std::uint64_t>(200000 * env_scale());
  cfg.threads = static_cast<int>(env_long(
      "MVCC_THREADS",
      std::max(2u, std::thread::hardware_concurrency())));
  cfg.warmup = bench::warmup_seconds();
  cfg.seconds = bench::cell_seconds();

  ZipfGenerator zipf(cfg.keys, 0.99);
  const YcsbSpec specs[] = {workload::kYcsbA, workload::kYcsbB,
                            workload::kYcsbC};
  const char* columns[] = {"ours",     "ours+gc", "cow-nobatch", "skiplist",
                           "ext-bst",  "b+tree",  "hash"};
  constexpr int kStructures = 7;
  CellResult results[3][kStructures];

  for (int w = 0; w < 3; ++w) {
    const YcsbSpec& spec = specs[w];
    std::fprintf(stderr, "fig7: workload %s...\n", spec.name.data());
    const std::string wl(spec.name);
    results[w][0] =
        run_ours<vm::BaseVersionManager>(spec, zipf, cfg, wl + "/ours");
    results[w][1] =
        run_ours<vm::PswfVersionManager>(spec, zipf, cfg, wl + "/ours+gc");
    {
      baselines::CowTreeNoBatch m;
      results[w][2] = run_plain(m, spec, zipf, cfg, wl + "/cow-nobatch");
    }
    {
      baselines::LockFreeSkipList m;
      results[w][3] = run_plain(m, spec, zipf, cfg, wl + "/skiplist");
    }
    {
      baselines::ExternalBst m;
      results[w][4] = run_plain(m, spec, zipf, cfg, wl + "/ext-bst");
    }
    {
      baselines::BPlusTree m;
      results[w][5] = run_plain(m, spec, zipf, cfg, wl + "/b+tree");
    }
    {
      baselines::ShardedHashMap m(cfg.keys * 2);
      results[w][6] = run_plain(m, spec, zipf, cfg, wl + "/hash");
    }
  }

  bench::print_header("Figure 7: YCSB throughput (Mop/s), six structures");
  std::printf("(keys=%llu threads=%d warmup=%.2fs measure=%.2fs per cell; "
              "paper: 5e7 keys, 144 threads)\n",
              static_cast<unsigned long long>(cfg.keys), cfg.threads,
              cfg.warmup, cfg.seconds);
  bench::Table tput({"workload", "ours", "ours+gc", "cow-nobatch", "skiplist",
                     "ext-bst", "b+tree", "hash"});
  for (int w = 0; w < 3; ++w) {
    std::vector<std::string> row{std::string(specs[w].name)};
    for (int s = 0; s < kStructures; ++s) {
      row.push_back(bench::fmt(results[w][s].mops));
    }
    tput.add_row(std::move(row));
  }
  tput.print();

  bench::print_header(
      "Figure 7 steady-state latency (us, sampled every 64th op)");
  bench::Table lat({"structure", "workload", "read_p50_us", "read_p99_us",
                    "read_p999_us", "upd_p50_us", "upd_p99_us",
                    "upd_p999_us"});
  for (int s = 0; s < kStructures; ++s) {
    for (int w = 0; w < 3; ++w) {
      const CellResult& r = results[w][s];
      lat.add_row({columns[s], std::string(specs[w].name),
                   bench::fmt(r.read_us[0], 1), bench::fmt(r.read_us[1], 1),
                   bench::fmt(r.read_us[2], 1), bench::fmt(r.upd_us[0], 1),
                   bench::fmt(r.upd_us[1], 1), bench::fmt(r.upd_us[2], 1)});
    }
  }
  lat.print();

  // Sharded scale-out: MVCC_SHARDS pins a single count (CI runs one
  // process per count for crash isolation); unset sweeps 1/2/4 so one run
  // prints the whole scaling table.
  std::vector<int> shard_counts;
  const long forced_shards = env_long("MVCC_SHARDS", 0);
  if (forced_shards > 0) {
    shard_counts.push_back(static_cast<int>(forced_shards));
  } else {
    shard_counts = {1, 2, 4};
  }
  bench::print_header(
      "Sharded YCSB A scale-out (partitioned driver, update = committed)");
  std::printf("(keys=%llu producers=%d warmup=%.2fs measure=%.2fs per row; "
              "snapshot every 8192nd op)\n",
              static_cast<unsigned long long>(cfg.keys), cfg.threads,
              cfg.warmup, cfg.seconds);
  bench::Table sharded_table(
      {"shards", "mops", "upd_mops", "snapshots", "snap_retries"});
  for (int n : shard_counts) {
    std::fprintf(stderr, "fig7: sharded shards=%d...\n", n);
    const ShardedCell r = run_sharded(n, cfg);
    sharded_table.add_row({std::to_string(n), bench::fmt(r.mops),
                           bench::fmt(r.upd_mops),
                           std::to_string(r.snapshots),
                           std::to_string(r.snap_retries)});
  }
  sharded_table.print();
  std::printf("expected shape: upd_mops rises monotonically with shards on "
              "a multi-core host\n(one flattener per shard; shards=1 is the "
              "single-flattener write ceiling).\n");

  if (obs::enabled()) {
    bench::print_header("metrics (obs registry)");
    std::fputs(obs::registry().dump_text("fig7/").c_str(), stdout);
  }
  return 0;
}
