// Microbenchmarks for the functional tree substrate: point ops, range sums,
// and the parallel bulk operations (union / multi_insert) whose join-based
// parallelism the batching writer relies on.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/ftree/fmap.h"

namespace {

using namespace mvcc;
using SumMap = ftree::FMap<std::uint64_t, std::uint64_t,
                           ftree::AugSum<std::uint64_t, std::uint64_t>>;

SumMap make_random(std::int64_t n, std::uint64_t seed) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  entries.reserve(static_cast<std::size_t>(n));
  Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    entries.emplace_back(rng(), static_cast<std::uint64_t>(i));
  }
  return SumMap::from_entries(std::move(entries));
}

void BM_TreeInsert(benchmark::State& state) {
  SumMap m = make_random(state.range(0), 1);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    m = m.inserted(rng(), 1);
  }
}

void BM_TreeFind(benchmark::State& state) {
  SumMap m = make_random(state.range(0), 3);
  auto entries = m.to_vector();
  Xoshiro256 rng(4);
  for (auto _ : state) {
    const auto& probe = entries[rng.next_below(entries.size())];
    benchmark::DoNotOptimize(m.find(probe.first));
  }
}

void BM_TreeRangeSum(benchmark::State& state) {
  SumMap m = make_random(state.range(0), 5);
  Xoshiro256 rng(6);
  for (auto _ : state) {
    const std::uint64_t lo = rng();
    benchmark::DoNotOptimize(m.aug_range(lo, lo + (~std::uint64_t{0} >> 8)));
  }
}

void BM_TreeUnion(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  SumMap a = make_random(n, 7);
  SumMap b = make_random(n / 10, 8);  // paper shape: big corpus, small delta
  for (auto _ : state) {
    SumMap u = a.union_with(b);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * (n / 10));
}

void BM_TreeMultiInsert(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  SumMap a = make_random(n, 9);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
  Xoshiro256 rng(10);
  for (std::int64_t i = 0; i < n / 10; ++i) batch.emplace_back(rng(), 1);
  ftree::prepare_batch(batch);
  for (auto _ : state) {
    SumMap u = a.multi_inserted(
        std::span<const std::pair<std::uint64_t, std::uint64_t>>(batch));
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}

void BM_TreeMultiInsertVsLoop(benchmark::State& state) {
  // The ablation behind batching: the same updates applied one-by-one.
  const std::int64_t n = state.range(0);
  SumMap a = make_random(n, 11);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
  Xoshiro256 rng(12);
  for (std::int64_t i = 0; i < n / 10; ++i) batch.emplace_back(rng(), 1);
  for (auto _ : state) {
    SumMap u = a;
    for (const auto& [k, v] : batch) u = u.inserted(k, v);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}

void BM_TreeBulkUnionThreads(benchmark::State& state) {
  // Fork-join scaling of the bulk union: the same corpus/delta union with
  // an explicit worker budget. The /1 rows are the sequential baseline the
  // speedup at /2, /4... is measured against (the result tree is
  // bit-identical at every worker count).
  const std::int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  SumMap a = make_random(n, 21);
  SumMap b = make_random(n / 4, 22);
  for (auto _ : state) {
    SumMap u = a.union_with(b, threads);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * (n / 4));
}

void BM_TreeBuildSortedThreads(benchmark::State& state) {
  // Fork-join scaling of build_sorted (the batch-tree half of
  // multi_insert).
  const std::int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<std::uint64_t>(i) * 2, 1);
  }
  const std::span<const std::pair<std::uint64_t, std::uint64_t>> sp(entries);
  using Aug = ftree::AugSum<std::uint64_t, std::uint64_t>;
  for (auto _ : state) {
    auto* t =
        ftree::build_sorted<std::uint64_t, std::uint64_t, Aug>(sp, threads);
    benchmark::DoNotOptimize(ftree::weight_of(t));
    ftree::collect(t);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

BENCHMARK(BM_TreeInsert)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_TreeFind)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_TreeRangeSum)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_TreeUnion)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_TreeMultiInsert)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_TreeMultiInsertVsLoop)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_TreeBulkUnionThreads)
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 2})
    ->Args({1 << 18, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4});
BENCHMARK(BM_TreeBuildSortedThreads)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4});

BENCHMARK_MAIN();
