// Microbenchmark supporting Theorem 4.2: collect() cost is O(S+1) where S is
// the number of tuples freed. We build chains/trees of size S and measure a
// full collect; ns-per-freed-tuple should be flat across four orders of
// magnitude of S (linear total cost).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/obs/obs.h"
#include "mvcc/plm/plm.h"

namespace {

using namespace mvcc;

void BM_PlmCollectChain(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  plm::Machine m;
  for (auto _ : state) {
    state.PauseTiming();
    plm::Tuple* cur = m.make_tuple({plm::Value::from_int(0)});
    for (std::int64_t i = 1; i < depth; ++i) {
      cur = m.make_tuple({plm::Value::from_tuple(cur)});
    }
    m.publish_root(cur);
    state.ResumeTiming();
    benchmark::DoNotOptimize(m.collect(plm::Value::from_tuple(cur)));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}

void BM_PlmCollectSharedPrefix(benchmark::State& state) {
  // Collect a version that shares most of its structure with a survivor:
  // cost must be proportional to the PRIVATE part only (precision of the
  // work bound, not just of the reclamation).
  const std::int64_t shared = state.range(0);
  plm::Machine m;
  plm::Tuple* base = m.make_tuple({plm::Value::from_int(0)});
  for (std::int64_t i = 1; i < shared; ++i) {
    base = m.make_tuple({plm::Value::from_tuple(base)});
  }
  m.publish_root(base);  // survivor version pins the chain
  for (auto _ : state) {
    state.PauseTiming();
    // A version with an 8-tuple private path onto the shared chain.
    plm::Tuple* v = m.make_tuple({plm::Value::from_tuple(base)});
    for (int i = 0; i < 7; ++i) {
      v = m.make_tuple({plm::Value::from_tuple(v)});
    }
    m.publish_root(v);
    state.ResumeTiming();
    benchmark::DoNotOptimize(m.collect(plm::Value::from_tuple(v)));
  }
  m.collect(plm::Value::from_tuple(base));
  state.SetItemsProcessed(state.iterations() * 8);
}

void BM_TreeCollectWholeTree(benchmark::State& state) {
  using N = ftree::Node<std::uint64_t, std::uint64_t>;
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    N* t = nullptr;
    for (std::int64_t i = 0; i < n; ++i) {
      t = ftree::insert(t, static_cast<std::uint64_t>(i),
                        static_cast<std::uint64_t>(i));
    }
    state.ResumeTiming();
    ftree::collect(t);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_TreeCollectOneVersionOfMany(benchmark::State& state) {
  // The transaction-system shape: drop one version out of a chain of
  // versions produced by single-key updates; cost is the private path only.
  using N = ftree::Node<std::uint64_t, std::uint64_t>;
  const std::int64_t n = state.range(0);
  N* base = nullptr;
  for (std::int64_t i = 0; i < n; ++i) {
    base = ftree::insert(base, static_cast<std::uint64_t>(i),
                         static_cast<std::uint64_t>(i));
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    state.PauseTiming();
    N* next = ftree::insert(ftree::share(base), key % n, key);
    ++key;
    state.ResumeTiming();
    ftree::collect(next);  // drop the derived version; base survives
  }
  ftree::collect(base);
}

// Deterministic precise-GC self-check, printed after the benchmarks for
// the CI allocator A/B harness: a default (slab) run and an
// MVCC_ALLOC=malloc run of this binary must report the exact same freed
// count and final live count — the freed SET is allocator-invariant, only
// where the storage goes differs.
void print_selfcheck() {
  using N = ftree::Node<std::uint64_t, std::uint64_t>;
  constexpr std::uint64_t kMod = 100003;
  N* base = nullptr;
  for (std::uint64_t i = 0; i < 50000; ++i) {
    base = ftree::insert(
        base, static_cast<std::uint64_t>((i * 2654435761ull) % kMod), i);
  }
  N* derived = ftree::share(base);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    derived = ftree::insert(
        derived, static_cast<std::uint64_t>((i * 40503ull) % kMod), i + 1);
  }
  std::size_t freed = ftree::collect(derived);
  freed += ftree::collect(base);
  std::printf("collect/selfcheck_freed=%zu\n", freed);
  std::printf("collect/selfcheck_live=%lld\n", ftree::live_nodes());
}

}  // namespace

BENCHMARK(BM_PlmCollectChain)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_PlmCollectSharedPrefix)->Arg(100)->Arg(10000);
BENCHMARK(BM_TreeCollectWholeTree)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_TreeCollectOneVersionOfMany)->Arg(1000)->Arg(100000);

// Hand-rolled BENCHMARK_MAIN so the observability session (footprint
// sampler, trace dump) and the hardware counters bracket exactly the
// benchmark runs, not static init/teardown.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    mvcc::bench::ObsSession obs_session;
    mvcc::obs::PerfCell perf("");
    benchmark::RunSpecifiedBenchmarks();
  }
  print_selfcheck();
  if (mvcc::obs::enabled()) {
    std::fputs(mvcc::obs::registry().dump_text("collect/").c_str(), stdout);
  }
  benchmark::Shutdown();
  return 0;
}
