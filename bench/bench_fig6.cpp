// Reproduces FIGURE 6 of the paper: maximum number of uncollected versions
// as a function of update granularity nu, at query granularity nq = 10, for
// the five VM algorithms (PSWF, PSLF, HP, EP, RCU).
//
// Expected shape (paper): HP flat at 2P; EP explodes at small nu (readers
// cannot catch up with epochs) and is moderate at large nu; RCU pinned at 1;
// PSWF/PSLF small (a fraction of the reader count) and shrinking as nu
// grows.
#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "mvcc/vm/ep.h"
#include "mvcc/vm/hp.h"
#include "mvcc/vm/ibr.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/vm/rcu.h"
#include "mvcc/workload/range_workload.h"

namespace {

using namespace mvcc;

template <template <typename> class VMImpl>
std::int64_t max_versions(int nu) {
  workload::RangeWorkloadConfig cfg;
  cfg.readers = bench::reader_threads();
  cfg.initial_size = static_cast<std::uint64_t>(100000 * env_scale());
  cfg.nq = 10;
  cfg.nu = nu;
  cfg.duration_sec = bench::cell_seconds();
  return workload::run_range_workload<VMImpl>(cfg).max_live_versions;
}

}  // namespace

int main() {
  const int nus[] = {1, 10, 100, 1000, 10000};
  bench::print_header(
      "Figure 6: max uncollected versions vs update granularity (nq=10)");
  std::printf("(readers=%d; paper: 140 query threads, HP flat at 2P=282, EP "
              "up to ~1000 at small nu, RCU=1)\n",
              bench::reader_threads());
  // The IBR column is our extension beyond the paper (Section 6 cites
  // interval-based reclamation [63] as a further VM solution): era-precise
  // reclamation with HP-style amortization, immune to EP's stalled-reader
  // explosion.
  bench::print_row({"nu", "PSWF", "PSLF", "HP", "EP", "RCU", "IBR"});
  for (int nu : nus) {
    std::fprintf(stderr, "fig6: nu=%d...\n", nu);
    bench::print_row({std::to_string(nu),
                      std::to_string(max_versions<vm::PswfVersionManager>(nu)),
                      std::to_string(max_versions<vm::PslfVersionManager>(nu)),
                      std::to_string(max_versions<vm::HpVersionManager>(nu)),
                      std::to_string(max_versions<vm::EpVersionManager>(nu)),
                      std::to_string(max_versions<vm::RcuVersionManager>(nu)),
                      std::to_string(max_versions<vm::IbrVersionManager>(nu))});
  }
  return 0;
}
