// Ablation for Appendix F: batch size vs throughput and latency. Sweeps the
// writer's max batch bound and reports steady-state update throughput, mean
// batch size, and p50/p99/p999 submit-to-commit latency -- the
// throughput/latency trade the paper calls out ("a larger batch size leads
// to higher throughput ... at the cost of longer latency").
//
// Each cell is a duration-based steady-state run: producers start, the
// system warms for MVCC_WARMUP_SECONDS (rings filled, flattener batching at
// its equilibrium size, allocator warm), then counters are snapshotted and
// the measured window of MVCC_SECONDS begins. Latency samples are recorded
// into an obs::LatencyHistogram only inside the window.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mvcc/common/rng.h"
#include "mvcc/common/timing.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/batching.h"
#include "mvcc/txn/sharded.h"
#include "mvcc/vm/pswf.h"

namespace {

using namespace mvcc;
using BMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                              ftree::NoAug<std::uint64_t, std::uint64_t>,
                              vm::PswfVersionManager>;

struct Result {
  double mops;
  double avg_batch;
  double p50_us;
  double p99_us;
  double p999_us;
};

Result run(std::size_t max_batch, int producers, double warmup,
           double seconds) {
  // Opened before the producer threads spawn: perf inherit only covers
  // threads created after the counters exist.
  obs::PerfCell perf("mb" + std::to_string(max_batch));
  BMap map(producers, {}, /*buffer_capacity=*/1 << 14, max_batch);
  // Latency probes are synchronous updates, and a sync producer parks until
  // its commit. Probing on a fixed fine cadence would cap batch formation
  // at the probe interval for every large bound — measuring the probe, not
  // the system — so the cadence scales with the batch bound (floored and
  // capped to keep samples flowing at smoke scale).
  const std::uint64_t sync_cadence = std::clamp<std::uint64_t>(
      4 * static_cast<std::uint64_t>(max_batch), 1024, 8192);
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  obs::LatencyHistogram latency;

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(static_cast<std::uint64_t>(p) + 17);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (i % sync_cadence == sync_cadence - 1) {
          // Sampled synchronous update: measures commit latency.
          Timer t;
          map.upsert_sync(p, rng.next_below(100000), i);
          if (measuring.load(std::memory_order_relaxed)) {
            latency.record(t.nanos());
          }
        } else {
          map.submit(p, txn::BatchOp::kUpsert, rng.next_below(100000), i);
        }
        ++i;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(warmup));
  obs::Delta ops_d([&map] { return map.ops_committed(); });
  obs::Delta batches_d([&map] { return map.batches_committed(); });
  measuring.store(true, std::memory_order_relaxed);
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const double secs = timer.seconds();
  const std::uint64_t ops = ops_d.delta();
  const std::uint64_t batches = batches_d.delta();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  map.flush_all();

  Result r;
  r.mops = static_cast<double>(ops) / secs / 1e6;
  r.avg_batch = batches == 0 ? 0
                             : static_cast<double>(ops) /
                                   static_cast<double>(batches);
  r.p50_us = latency.quantile(0.50) / 1e3;
  r.p99_us = latency.quantile(0.99) / 1e3;
  r.p999_us = latency.quantile(0.999) / 1e3;
  return r;
}

// Sharded sweep: same steady-state harness over txn::ShardedMap at
// increasing shard counts. Producers stream async submits (uniform keys,
// so the splitmix routing spreads them across every shard) and every
// 4096th op is a timed two-key multi_upsert_sync whose keys almost always
// span two shards — the latency columns are the price of the cross-shard
// atomic-commit protocol (epoch flip + overlapped per-shard sync tickets),
// and throughput is committed ops across all flatteners.
Result run_sharded(int nshards, int producers, double warmup,
                   double seconds) {
  using SMap = txn::ShardedMap<std::uint64_t, std::uint64_t,
                               ftree::NoAug<std::uint64_t, std::uint64_t>,
                               vm::PswfVersionManager>;
  obs::PerfCell perf("sharded-s" + std::to_string(nshards));
  SMap map(producers, {}, nshards);
  constexpr std::uint64_t kMultiCadence = 4096;
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  obs::LatencyHistogram latency;

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(static_cast<std::uint64_t>(p) + 31);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (i % kMultiCadence == kMultiCadence - 1) {
          const SMap::Entry ops[2] = {{rng.next_below(100000), i},
                                      {rng.next_below(100000), i}};
          Timer t;
          map.multi_upsert_sync(p, std::span<const SMap::Entry>(ops));
          if (measuring.load(std::memory_order_relaxed)) {
            latency.record(t.nanos());
          }
        } else {
          map.submit(p, txn::BatchOp::kUpsert, rng.next_below(100000), i);
        }
        ++i;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(warmup));
  obs::Delta ops_d([&map] { return map.ops_committed(); });
  obs::Delta batches_d([&map] { return map.batches_committed(); });
  measuring.store(true, std::memory_order_relaxed);
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const double secs = timer.seconds();
  const std::uint64_t ops = ops_d.delta();
  const std::uint64_t batches = batches_d.delta();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  map.flush_all();

  Result r;
  r.mops = static_cast<double>(ops) / secs / 1e6;
  r.avg_batch = batches == 0 ? 0
                             : static_cast<double>(ops) /
                                   static_cast<double>(batches);
  r.p50_us = latency.quantile(0.50) / 1e3;
  r.p99_us = latency.quantile(0.99) / 1e3;
  r.p999_us = latency.quantile(0.999) / 1e3;
  return r;
}

}  // namespace

int main() {
  bench::ObsSession obs_session;
  const int producers = static_cast<int>(env_long("MVCC_THREADS", 2));
  const double warmup = bench::warmup_seconds();
  const double secs = bench::cell_seconds();
  bench::print_header("Batching ablation (Appendix F): batch bound sweep");
  std::printf("(producers=%d warmup=%.2fs measure=%.2fs per cell; "
              "steady-state; reclaim=%s)\n",
              producers, warmup, secs,
              vm::bg_reclaim_enabled() ? "background" : "inline");
  bench::Table table(
      {"max_batch", "mops", "avg_batch", "p50_us", "p99_us", "p999_us"});
  for (std::size_t mb : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                         std::size_t{4096}, std::size_t{65536}}) {
    std::fprintf(stderr, "batching: max_batch=%zu...\n", mb);
    Result r = run(mb, producers, warmup, secs);
    table.add_row({std::to_string(mb), bench::fmt(r.mops),
                   bench::fmt(r.avg_batch, 1), bench::fmt(r.p50_us, 1),
                   bench::fmt(r.p99_us, 1), bench::fmt(r.p999_us, 1)});
  }
  table.print();
  std::printf("expected shape: throughput grows with the batch bound while\n"
              "sampled commit latency grows too (throughput/latency trade).\n");

  std::vector<int> shard_counts;
  const long forced_shards = env_long("MVCC_SHARDS", 0);
  if (forced_shards > 0) {
    shard_counts.push_back(static_cast<int>(forced_shards));
  } else {
    shard_counts = {1, 2, 4};
  }
  bench::print_header(
      "Sharded multi-writer sweep (latency = 2-key cross-shard commit)");
  std::printf("(producers=%d warmup=%.2fs measure=%.2fs per row)\n",
              producers, warmup, secs);
  bench::Table sharded_table(
      {"shards", "mops", "avg_batch", "p50_us", "p99_us", "p999_us"});
  for (int n : shard_counts) {
    std::fprintf(stderr, "batching: shards=%d...\n", n);
    Result r = run_sharded(n, producers, warmup, secs);
    sharded_table.add_row({std::to_string(n), bench::fmt(r.mops),
                           bench::fmt(r.avg_batch, 1),
                           bench::fmt(r.p50_us, 1), bench::fmt(r.p99_us, 1),
                           bench::fmt(r.p999_us, 1)});
  }
  sharded_table.print();
  if (obs::enabled()) {
    bench::print_header("metrics (obs registry)");
    std::fputs(obs::registry().dump_text("batching/").c_str(), stdout);
  }
  return 0;
}
