// Ablation for Appendix F: batch size vs throughput and latency. Sweeps the
// writer's max batch bound and reports update throughput, mean batch size,
// and mean submit-to-commit latency -- the throughput/latency trade the
// paper calls out ("a larger batch size leads to higher throughput ... at
// the cost of longer latency").
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "mvcc/common/rng.h"
#include "mvcc/common/timing.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/pswf.h"

namespace {

using namespace mvcc;
using BMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                              ftree::NoAug<std::uint64_t, std::uint64_t>,
                              vm::PswfVersionManager>;

struct Result {
  double mops;
  double avg_batch;
  double mean_latency_us;
};

Result run(std::size_t max_batch, int producers, double seconds) {
  BMap map(producers, {}, /*buffer_capacity=*/1 << 14, max_batch);
  // Latency probes are synchronous updates, and a sync producer parks until
  // its commit. Probing on a fixed fine cadence would cap batch formation
  // at the probe interval for every large bound — measuring the probe, not
  // the system — so the cadence scales with the batch bound (floored and
  // capped to keep samples flowing at smoke scale).
  const std::uint64_t sync_cadence = std::clamp<std::uint64_t>(
      4 * static_cast<std::uint64_t>(max_batch), 1024, 8192);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> latency_ns{0};
  std::atomic<std::uint64_t> latency_samples{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(static_cast<std::uint64_t>(p) + 17);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (i % sync_cadence == sync_cadence - 1) {
          // Sampled synchronous update: measures commit latency.
          Timer t;
          map.upsert_sync(p, rng.next_below(100000), i);
          latency_ns.fetch_add(t.nanos(), std::memory_order_relaxed);
          latency_samples.fetch_add(1, std::memory_order_relaxed);
        } else {
          map.submit(p, txn::BatchOp::kUpsert, rng.next_below(100000), i);
        }
        ++i;
      }
    });
  }
  Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  map.flush_all();
  const double secs = timer.seconds();

  Result r;
  r.mops = static_cast<double>(map.ops_committed()) / secs / 1e6;
  r.avg_batch = map.batches_committed() == 0
                    ? 0
                    : static_cast<double>(map.ops_committed()) /
                          static_cast<double>(map.batches_committed());
  r.mean_latency_us =
      latency_samples.load() == 0
          ? 0
          : static_cast<double>(latency_ns.load()) /
                static_cast<double>(latency_samples.load()) / 1e3;
  return r;
}

}  // namespace

int main() {
  const int producers = static_cast<int>(env_long("MVCC_THREADS", 2));
  const double secs = bench::cell_seconds();
  bench::print_header("Batching ablation (Appendix F): batch bound sweep");
  bench::print_row({"max_batch", "update Mop/s", "avg batch", "p~latency us"},
                   16);
  for (std::size_t mb : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                         std::size_t{4096}, std::size_t{65536}}) {
    std::fprintf(stderr, "batching: max_batch=%zu...\n", mb);
    Result r = run(mb, producers, secs);
    bench::print_row({std::to_string(mb), bench::fmt(r.mops),
                      bench::fmt(r.avg_batch, 1),
                      bench::fmt(r.mean_latency_us, 1)},
                     16);
  }
  std::printf("expected shape: throughput grows with the batch bound while\n"
              "sampled commit latency grows too (throughput/latency trade).\n");
  return 0;
}
