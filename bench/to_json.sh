#!/usr/bin/env sh
# Turns the smoke-run tables of bench_fig7, bench_table3 and (optionally)
# bench_batching — plus any obs-registry `name=value` dump lines they
# contain (MVCC_STATS=1) — into one flat machine-readable JSON object
# (metric name -> number), so every CI run archives a comparable perf
# record (bench-smoke.json) and the trajectory of the repo's throughput,
# latency quantiles and memory footprint can be graphed across commits.
#
# Usage: to_json.sh fig7.txt table3.txt [batching.txt] [footprint.csv] \
#            > bench-smoke.json
#
# Emitted keys:
#   fig7/<workload>/<structure>_mops    YCSB throughput, Mop/s
#   fig7lat/<structure>/<workload>/<q>  steady-state latency quantiles, us
#   table3/p<N>/<column>_s              inverted-index phase times, seconds
#                                       (Tu+Tq -> TuplusTq, Tu+q -> Tuplusq)
#   batching/mb<N>/<column>             batch-bound sweep row, per max_batch
#   fig7/shardscale/s<N>/<column>       sharded YCSB A scale-out row, per
#   batching/shardscale/s<N>/<column>   shard count (the "shards" tables)
#   footprint/<column>/peak|mean|final  footprint-curve summary per sampler
#                                       column (MVCC_SAMPLE_MS CSV)
#   <bench>/<metric>[/<stat>]           obs registry dumps, already
#                                       namespaced by the emitting bench
#                                       (e.g. fig7/ftree/live_nodes_hwm,
#                                       batching/txn/commit_latency_ns/p99)
#
# A table whose header drifted parses to nothing; that must fail the run
# loudly, not archive a silently empty JSON — any input file yielding zero
# metrics exits non-zero.
set -eu

fig7="${1:-fig7-smoke.txt}"
table3="${2:-table3-smoke.txt}"
batching="${3:-}"
footprint="${4:-}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Registry dump lines pass through verbatim: the benches already namespace
# them (fig7/..., batching/...). Whole-line match so table rows and chatter
# never alias into metrics.
metric_lines() {
  awk '/^[A-Za-z0-9_][A-Za-z0-9_\/+.-]*=-?[0-9]+(\.[0-9]+)?$/' "$1"
}

parse_fig7() {
  awk '
    /^====/ { mode = "" }
    $1 == "workload" {
      for (i = 2; i <= NF; i++) col[i] = $i
      mode = "tput"; next
    }
    $1 == "structure" {
      for (i = 3; i <= NF; i++) lcol[i] = $i
      mode = "lat"; next
    }
    $1 == "shards" {
      for (i = 2; i <= NF; i++) scol[i] = $i
      mode = "shard"; next
    }
    mode == "tput" && ($1 == "A" || $1 == "B" || $1 == "C") {
      for (i = 2; i <= NF; i++) printf "fig7/%s/%s_mops=%s\n", $1, col[i], $i
    }
    mode == "lat" && ($2 == "A" || $2 == "B" || $2 == "C") {
      for (i = 3; i <= NF; i++)
        printf "fig7lat/%s/%s/%s=%s\n", $1, $2, lcol[i], $i
    }
    mode == "shard" && $1 ~ /^[0-9]+$/ {
      for (i = 2; i <= NF; i++)
        printf "fig7/shardscale/s%s/%s=%s\n", $1, scol[i], $i
    }
  ' "$1"
  metric_lines "$1"
}

parse_table3() {
  awk '
    $1 == "p" { for (i = 2; i <= NF; i++) col[i] = $i; have = 1; next }
    have && $1 ~ /^[0-9]+$/ {
      for (i = 2; i <= NF; i++) {
        name = col[i]
        gsub(/\+/, "plus", name)
        printf "table3/p%s/%s_s=%s\n", $1, name, $i
      }
    }
  ' "$1"
  metric_lines "$1"
}

parse_batching() {
  awk '
    /^====/ { mode = "" }
    $1 == "max_batch" {
      for (i = 2; i <= NF; i++) col[i] = $i
      mode = "mb"; next
    }
    $1 == "shards" {
      for (i = 2; i <= NF; i++) scol[i] = $i
      mode = "shard"; next
    }
    mode == "mb" && $1 ~ /^[0-9]+$/ {
      for (i = 2; i <= NF; i++) printf "batching/mb%s/%s=%s\n", $1, col[i], $i
    }
    mode == "shard" && $1 ~ /^[0-9]+$/ {
      for (i = 2; i <= NF; i++)
        printf "batching/shardscale/s%s/%s=%s\n", $1, scol[i], $i
    }
  ' "$1"
  metric_lines "$1"
}

# Footprint-over-time curve (sampler CSV: t_ms,col,...) summarized to
# peak/mean/final per column — enough to spot a footprint regression in the
# archived JSON without re-plotting the curve.
parse_footprint() {
  awk -F, '
    NR == 1 { n = split($0, cols, ","); next }
    {
      for (i = 2; i <= n; i++) {
        v = $i + 0
        if (count[i] == 0 || v > peak[i]) peak[i] = v
        sum[i] += v
        fin[i] = v
        count[i]++
      }
    }
    END {
      for (i = 2; i <= n; i++) {
        if (count[i] == 0) continue
        printf "footprint/%s/peak=%d\n", cols[i], peak[i]
        printf "footprint/%s/mean=%.3f\n", cols[i], sum[i] / count[i]
        printf "footprint/%s/final=%d\n", cols[i], fin[i]
      }
    }
  ' "$1"
}

require_metrics() {
  if ! [ -s "$1" ]; then
    echo "to_json.sh: zero metrics parsed from $2 (table header drift?)" >&2
    exit 1
  fi
}

parse_fig7 "$fig7" > "$tmp/fig7"
require_metrics "$tmp/fig7" "$fig7"
parse_table3 "$table3" > "$tmp/table3"
require_metrics "$tmp/table3" "$table3"
cat "$tmp/fig7" "$tmp/table3" > "$tmp/all"
if [ -n "$batching" ]; then
  parse_batching "$batching" > "$tmp/batching"
  require_metrics "$tmp/batching" "$batching"
  cat "$tmp/batching" >> "$tmp/all"
fi
if [ -n "$footprint" ]; then
  parse_footprint "$footprint" > "$tmp/footprint"
  require_metrics "$tmp/footprint" "$footprint"
  cat "$tmp/footprint" >> "$tmp/all"
fi

awk -F= '
  BEGIN { print "{" }
  { rows[++n] = sprintf("  \"%s\": %s", $1, $2) }
  END {
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], i < n ? "," : ""
    print "}"
  }
' "$tmp/all"
