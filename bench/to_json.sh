#!/usr/bin/env sh
# Turns the smoke-run tables of bench_fig7 and bench_table3 into one flat
# machine-readable JSON object (metric name -> number), so every CI run
# archives a comparable perf record (bench-smoke.json) and the trajectory
# of the repo's throughput can be graphed across commits.
#
# Usage: to_json.sh fig7-smoke.txt table3-smoke.txt > bench-smoke.json
#
# Emitted keys:
#   fig7/<workload>/<structure>_mops   YCSB throughput, Mop/s
#   table3/p<N>/<column>_s             inverted-index phase times, seconds
#                                      (Tu+Tq -> TuplusTq, Tu+q -> Tuplusq)
set -eu

fig7="${1:-fig7-smoke.txt}"
table3="${2:-table3-smoke.txt}"

{
  awk '
    $1 == "workload" { for (i = 2; i <= NF; i++) col[i] = $i; have = 1; next }
    have && ($1 == "A" || $1 == "B" || $1 == "C") {
      for (i = 2; i <= NF; i++) {
        printf "fig7/%s/%s_mops=%s\n", $1, col[i], $i
      }
    }
  ' "$fig7"
  awk '
    $1 == "p" { for (i = 2; i <= NF; i++) col[i] = $i; have = 1; next }
    have && $1 ~ /^[0-9]+$/ {
      for (i = 2; i <= NF; i++) {
        name = col[i]
        gsub(/\+/, "plus", name)
        printf "table3/p%s/%s_s=%s\n", $1, name, $i
      }
    }
  ' "$table3"
} | awk -F= '
  BEGIN { print "{" }
  { rows[++n] = sprintf("  \"%s\": %s", $1, $2) }
  END {
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], i < n ? "," : ""
    print "}"
  }
'
