// Ablation: what does PSWF's helping buy over PSLF (Section 7.1 notes the
// difference is invisible on average and matters in extreme cases)?
//
// We measure the reader-side acquire+release cost and the acquire retry
// behaviour under a maximally hostile writer (continuous sets with tiny
// update granularity, nu=1 -- the regime the paper says shows "a more
// notable difference").
#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/workload/range_workload.h"

namespace {

using namespace mvcc;

template <template <typename> class VMImpl>
workload::RangeWorkloadResult run(int nu) {
  workload::RangeWorkloadConfig cfg;
  cfg.readers = bench::reader_threads();
  cfg.initial_size = static_cast<std::uint64_t>(50000 * env_scale());
  cfg.nq = 10;
  cfg.nu = nu;
  cfg.duration_sec = bench::cell_seconds();
  return workload::run_range_workload<VMImpl>(cfg);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: PSWF (wait-free helping) vs PSLF (lock-free, no set-help)");
  bench::print_row({"nu", "impl", "query Mop/s", "update Mop/s", "max vers"},
                   14);
  for (int nu : {1, 10, 1000}) {
    std::fprintf(stderr, "ablation_help: nu=%d...\n", nu);
    auto wf = run<vm::PswfVersionManager>(nu);
    auto lf = run<vm::PslfVersionManager>(nu);
    bench::print_row({std::to_string(nu), "PSWF", bench::fmt(wf.query_mops()),
                      bench::fmt(wf.update_mops()),
                      std::to_string(wf.max_live_versions)},
                     14);
    bench::print_row({std::to_string(nu), "PSLF", bench::fmt(lf.query_mops()),
                      bench::fmt(lf.update_mops()),
                      std::to_string(lf.max_live_versions)},
                     14);
  }
  std::printf("expected shape (paper 7.1): near-identical throughput; the\n"
              "helping machinery is insurance against adversarial stalls,\n"
              "not a fast-path cost.\n");
  return 0;
}
