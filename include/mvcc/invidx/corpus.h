// Synthetic Zipf corpus for the Table 3 inverted-index experiment.
//
// The paper indexes Wikipedia 2016 (8.13M documents, 1.6e9 (term, doc)
// pairs) and runs and-queries over term pairs while document batches are
// applied concurrently. Here the corpus is synthetic with the same shape:
// term frequencies follow a Zipf law (the empirical distribution of words
// in natural text), and query terms are drawn from the same distribution,
// so frequent terms have long posting lists AND are queried often — the
// contention pattern that makes Table 3 interesting.
//
// Everything is deterministic under CorpusConfig::seed (mvcc::Xoshiro256
// streams), and benches scale num_docs / vocabulary / query counts by
// env_scale() so the same binary runs at laptop and paper scale. Zipf
// ranks are scrambled through splitmix64 (as in workload/ycsb.h) so the
// hot terms are spread across the term space instead of clustered at one
// end of the tree.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/workload/ycsb.h"

namespace mvcc::invidx {

using Term = std::uint64_t;
using DocId = std::uint64_t;

// One document: a distinct, sorted set of terms.
struct Document {
  DocId id;
  std::vector<Term> terms;
};

// Shape of the synthetic corpus. terms_per_doc is the number of Zipf draws
// per document; the distinct-term count per document comes out a little
// lower because draws collide on the hot head of the distribution.
struct CorpusConfig {
  std::uint64_t num_docs = 4000;
  std::uint64_t vocabulary = 20000;
  std::uint64_t terms_per_doc = 64;
  double theta = 0.99;  // Zipf skew of term draws (YCSB default)
  std::uint64_t seed = 0x7ab1e3ULL;
};

namespace detail {

// Fixed, seed-independent rank scrambling so every stream (corpus and
// queries alike) agrees on which term a Zipf rank denotes.
inline Term term_of_rank(std::uint64_t rank, std::uint64_t vocabulary) {
  return splitmix64_mix(rank + 0x1e1df00dULL) % vocabulary;
}

}  // namespace detail

// Generates the corpus: num_docs documents with ids 0..num_docs-1, each
// holding the distinct terms of terms_per_doc scrambled-Zipf draws.
// Deterministic under cc.seed.
inline std::vector<Document> make_corpus(const CorpusConfig& cc) {
  const std::uint64_t vocab = std::max<std::uint64_t>(1, cc.vocabulary);
  const workload::ZipfGenerator zipf(vocab, cc.theta);
  Xoshiro256 rng(cc.seed);
  std::vector<Document> docs;
  docs.reserve(cc.num_docs);
  for (std::uint64_t d = 0; d < cc.num_docs; ++d) {
    Document doc;
    doc.id = d;
    doc.terms.reserve(cc.terms_per_doc);
    for (std::uint64_t i = 0; i < cc.terms_per_doc; ++i) {
      doc.terms.push_back(detail::term_of_rank(zipf.sample(rng), vocab));
    }
    std::sort(doc.terms.begin(), doc.terms.end());
    doc.terms.erase(std::unique(doc.terms.begin(), doc.terms.end()),
                    doc.terms.end());
    docs.push_back(std::move(doc));
  }
  return docs;
}

// Generates `n` and-query term pairs from the same scrambled-Zipf
// distribution as the corpus (frequent terms are queried more often), the
// two terms of a pair distinct whenever the vocabulary allows it.
// Deterministic under cc.seed, decorrelated from the corpus stream.
inline std::vector<std::pair<Term, Term>> make_query_terms(
    const CorpusConfig& cc, std::uint64_t n) {
  const std::uint64_t vocab = std::max<std::uint64_t>(1, cc.vocabulary);
  const workload::ZipfGenerator zipf(vocab, cc.theta);
  Xoshiro256 rng(cc.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<std::pair<Term, Term>> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Term a = detail::term_of_rank(zipf.sample(rng), vocab);
    Term b = a;
    for (int tries = 0; tries < 64 && b == a; ++tries) {
      b = detail::term_of_rank(zipf.sample(rng), vocab);
    }
    out.emplace_back(a, b);
  }
  return out;
}

}  // namespace mvcc::invidx
