// Versioned inverted index — the Table 3 application (paper Section 6).
//
// The index is a functional map Term -> PostingList where a posting list
// is itself a functional map DocId -> marker, so one version of the WHOLE
// index is a single tree-of-trees root. Versions are published through a
// vm/ Version Maintenance algorithm: each document batch becomes ONE
// atomic write transaction (the writer merges per-term posting deltas over
// the current version with `union_` and applies every touched term in one
// parallel `multi_insert`, fork-join workers honoring MVCC_THREADS), and
// queries pin a version, take an O(1) snapshot, release, and intersect two
// posting lists without ever blocking the writer. This is exactly the
// architecture behind the paper's Tu + Tq ~ Tu+q result: updates and
// queries share nothing but reference counts.
//
// Duplicate (term, doc) pairs — replayed batches, re-added documents — are
// LAST-WRITE-WINS: a posting-list union REPLACES the doc entry rather than
// appending, so re-applying a batch leaves every posting list (and every
// doc_count) unchanged instead of double-counting postings.
//
// Concurrency contract (inherited from vm/base.h): add_documents calls
// must be externally serialized (single writer at a time); and_query and
// snapshot are wait-free against the writer and fully concurrent across
// distinct slots. A slot p must not be used from two threads at once.
// Precise GC falls out of the payload ownership: every Map a VM operation
// proves unreachable goes through vm::reclaim_payloads with
// alloc::PoolDispose (returned to the slab pool on the spot, or on the
// exec/ pool's background lane under
// MVCC_BG_RECLAIM=1; either way its destructor reenters collect for the
// nested posting lists), and the destructor quiesces that lane, so
// ftree::live_nodes() returns to baseline once the index and its
// snapshots are gone.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "mvcc/alloc/pool.h"
#include "mvcc/ftree/fmap.h"
#include "mvcc/invidx/corpus.h"
#include "mvcc/vm/base.h"

namespace mvcc::invidx {

template <template <class> class VMImpl>
class InvertedIndex {
 public:
  using PostingList = ftree::FMap<DocId, std::uint32_t>;
  using Map = ftree::FMap<Term, PostingList>;
  using VM = VMImpl<Map>;
  static_assert(vm::VersionManagerFor<VM, Map>);

  // `nprocs` slots: by convention benches use 0..nprocs-2 for query
  // threads and nprocs-1 for the writer, but any disjoint assignment works.
  explicit InvertedIndex(int nprocs) : vm_(nprocs, alloc::create<Map>()) {}

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  // Quiescent teardown; outstanding Snapshots stay valid (they own their
  // nodes by reference count, independent of the manager).
  ~InvertedIndex() {
    vm::reclaim_quiesce();
    for (Map* dead : vm_.shutdown_drain()) alloc::destroy(dead);
  }

  // Documents containing both `a` and `b` in `index`, ascending ids, at
  // most `limit` of them. Probes the larger posting list with entries of
  // the smaller: O(min(|a|,|b|) log max(|a|,|b|)), stopping early at the
  // limit.
  static std::vector<DocId> and_query_in(const Map& index, Term a, Term b,
                                         std::size_t limit) {
    std::vector<DocId> out;
    const PostingList* pa = index.find(a);
    const PostingList* pb = index.find(b);
    if (pa == nullptr || pb == nullptr || limit == 0) return out;
    const bool a_small = pa->size() <= pb->size();
    const PostingList& probe = a_small ? *pa : *pb;
    const PostingList& other = a_small ? *pb : *pa;
    probe.for_each_while([&](const DocId& d, const std::uint32_t&) {
      if (other.find(d) != nullptr) out.push_back(d);
      return out.size() < limit;
    });
    return out;
  }

  // A pinned consistent version of the whole index, independent of the
  // manager (it owns its nodes by reference count, so it may outlive the
  // index and any number of later commits at zero cost to the writer).
  class Snapshot {
   public:
    std::vector<DocId> and_query(Term a, Term b, std::size_t limit) const {
      return and_query_in(index_, a, b, limit);
    }

    // Number of documents whose posting list contains `t`.
    std::size_t doc_count(Term t) const {
      const PostingList* p = index_.find(t);
      return p != nullptr ? p->size() : 0;
    }

    // Distinct terms indexed in this version.
    std::size_t terms() const { return index_.size(); }

    const Map& map() const { return index_; }

   private:
    friend class InvertedIndex;
    explicit Snapshot(Map m) : index_(std::move(m)) {}
    Map index_;
  };

  // Applies one document batch as ONE atomic write transaction on slot p:
  // every (term, doc) pair of the batch becomes visible together, or not
  // at all. Touched posting lists get the batch's docs unioned in (last
  // write wins on duplicates), untouched terms are shared wholesale.
  void add_documents(int p, const std::vector<Document>& batch) {
    std::vector<std::pair<Term, DocId>> pairs;
    for (const Document& doc : batch) {
      for (Term t : doc.terms) pairs.emplace_back(t, doc.id);
    }
    if (pairs.empty()) return;
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    // Resolve the worker budget once per batch: the per-term unions below
    // would otherwise re-read MVCC_THREADS for every touched term, right
    // on the timed writer hot path.
    const int workers = config().threads;
    Map* cur = vm_.acquire(p);
    // Per touched term: build the posting delta, union it over the term's
    // current posting list (delta entries replace — last write wins).
    std::vector<typename Map::Entry> delta;
    for (std::size_t i = 0; i < pairs.size();) {
      const Term t = pairs[i].first;
      std::vector<typename PostingList::Entry> docs;
      for (; i < pairs.size() && pairs[i].first == t; ++i) {
        docs.emplace_back(pairs[i].second, 1u);
      }
      PostingList d = PostingList::from_entries(std::move(docs));
      if (const PostingList* old = cur->find(t)) {
        d = old->union_with(d, workers);
      }
      delta.emplace_back(t, std::move(d));
    }
    // `delta` is sorted by term with unique keys — already prepared — so
    // one parallel bulk multi_insert publishes the whole batch.
    Map next = cur->multi_inserted(
        std::span<const typename Map::Entry>(delta), workers);
    vm::reclaim_payloads(vm_.set(p, alloc::create<Map>(std::move(next))),
                         alloc::PoolDispose{});
    vm::reclaim_payloads(vm_.release(p), alloc::PoolDispose{});
  }

  // Snapshot the current version via slot p (O(1): one acquire, one
  // refcount bump, one release).
  Snapshot snapshot(int p) {
    Map* cur = vm_.acquire(p);
    Map snap = *cur;
    vm::reclaim_payloads(vm_.release(p), alloc::PoolDispose{});
    return Snapshot(std::move(snap));
  }

  // One-shot and-query at the current version via slot p. Reads the
  // acquired version in place — the VM pin protects it until release — so
  // the hot query path never touches the shared root's reference count.
  std::vector<DocId> and_query(int p, Term a, Term b, std::size_t limit) {
    Map* cur = vm_.acquire(p);
    std::vector<DocId> out = and_query_in(*cur, a, b, limit);
    vm::reclaim_payloads(vm_.release(p), alloc::PoolDispose{});
    return out;
  }

  const VM& vm() const { return vm_; }

 private:
  VM vm_;
};

}  // namespace mvcc::invidx
