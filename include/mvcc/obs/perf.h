// Optional Linux perf_event hardware counters (cycles, instructions,
// cache-misses, branch-misses), reported through the obs registry.
//
// Software metrics say what the system did; hardware counters say what it
// cost the machine — IPC and cache behavior are where the functional
// tree's pointer-chasing and the batching writer's bulk unions actually
// differ. A PerfCounters instance opens one counting fd per event via
// perf_event_open(2) with inherit=1, so threads SPAWNED AFTER the open
// (each bench cell's workers) are aggregated into the parent's count;
// read() and report() sum over the whole tree of threads.
//
// Degradation is graceful and silent by design: perf_event_open commonly
// fails in containers and CI (EACCES under perf_event_paranoid, ENOSYS in
// seccomp sandboxes, and the header may not even exist off-Linux). Every
// failure path leaves the counter closed: available() is false, read()
// returns zeros, report() emits nothing — never an error, never a crash.
// The benches gate construction on perf_requested() (MVCC_PERF=1 under
// MVCC_STATS=1), so the default run does not even attempt the syscall.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "mvcc/common/env.h"
#include "mvcc/obs/registry.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MVCC_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace mvcc::obs {

// True when the user asked for hardware counters: MVCC_PERF=1 and the
// stats layer is on. Constexpr false under -DMVCC_STATS=OFF.
inline bool perf_requested() {
#if defined(MVCC_STATS_DISABLED)
  return false;
#else
  static const bool on =
      env_long("MVCC_PERF", 0) != 0 && env_long("MVCC_STATS", 0) != 0;
  return on;
#endif
}

class PerfCounters {
 public:
  // The fixed event set, in reading order.
  static constexpr int kEvents = 4;
  static constexpr const char* kNames[kEvents] = {
      "cycles", "instructions", "cache_misses", "branch_misses"};

  struct Reading {
    std::uint64_t value[kEvents] = {0, 0, 0, 0};
    bool valid[kEvents] = {false, false, false, false};
  };

  // Opens the counters (enabled immediately). `open` = false skips the
  // syscalls entirely — the test seam for the unavailable path, and what a
  // failing perf_event_open degrades to.
  explicit PerfCounters(bool open = true) {
    for (int i = 0; i < kEvents; ++i) fds_[i] = -1;
#if defined(MVCC_HAVE_PERF_EVENT)
    if (!open) return;
    static constexpr std::uint64_t kConfigs[kEvents] = {
        PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (int i = 0; i < kEvents; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.type = PERF_TYPE_HARDWARE;
      attr.size = sizeof(attr);
      attr.config = kConfigs[i];
      attr.disabled = 0;
      attr.inherit = 1;  // aggregate threads spawned after this open
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      // pid=0, cpu=-1: this process (and, via inherit, its future
      // children) on any CPU. EACCES/ENOSYS/EPERM all land in fd == -1.
      fds_[i] = static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0, -1,
                                           -1, 0ul));
    }
#else
    (void)open;
#endif
  }

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  ~PerfCounters() {
#if defined(MVCC_HAVE_PERF_EVENT)
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0) ::close(fds_[i]);
    }
#endif
  }

  // True when at least one counter opened.
  bool available() const {
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0) return true;
    }
    return false;
  }

  void start() {
#if defined(MVCC_HAVE_PERF_EVENT)
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0) {
        ::ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
        ::ioctl(fds_[i], PERF_EVENT_IOC_ENABLE, 0);
      }
    }
#endif
  }

  void stop() {
#if defined(MVCC_HAVE_PERF_EVENT)
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0) ::ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    }
#endif
  }

  // Current values; a counter that failed to open (or whose read fails)
  // reads back invalid/zero.
  Reading read() const {
    Reading r;
#if defined(MVCC_HAVE_PERF_EVENT)
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] < 0) continue;
      std::uint64_t v = 0;
      if (::read(fds_[i], &v, sizeof(v)) == sizeof(v)) {
        r.value[i] = v;
        r.valid[i] = true;
      }
    }
#endif
    return r;
  }

  // Publishes the current values as registry gauges named
  // perf/<label>/<event> (perf/<event> for an empty label), skipping
  // counters that never opened. A no-op when nothing is available, so CI
  // containers emit no misleading zeros.
  void report(const std::string& label) const {
    const Reading r = read();
    const std::string base =
        label.empty() ? std::string("perf/") : "perf/" + label + "/";
    for (int i = 0; i < kEvents; ++i) {
      if (r.valid[i]) {
        registry().gauge(base + kNames[i]).set(
            static_cast<std::int64_t>(r.value[i]));
      }
    }
  }

 private:
  int fds_[kEvents];
};

// Per-cell RAII: opens the counters when perf was requested, reports them
// under perf/<label>/ on destruction. Construct BEFORE spawning the cell's
// worker threads (inherit only covers threads created after the open).
class PerfCell {
 public:
  explicit PerfCell(std::string label) : label_(std::move(label)) {
    if (perf_requested()) {
      pc_ = std::make_unique<PerfCounters>();
      pc_->start();
    }
  }

  PerfCell(const PerfCell&) = delete;
  PerfCell& operator=(const PerfCell&) = delete;

  ~PerfCell() {
    if (pc_ != nullptr) {
      pc_->stop();
      pc_->report(label_);
    }
  }

 private:
  std::string label_;
  std::unique_ptr<PerfCounters> pc_;
};

}  // namespace mvcc::obs
