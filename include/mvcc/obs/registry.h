// Named-metric registry: the export surface of the obs/ layer.
//
// Instrumentation sites look a metric up ONCE (a function-local static
// reference) and then touch only the lock-free Counter / Gauge /
// LatencyHistogram itself — the registry mutex guards registration and
// dumping, never the hot path. Metrics live for the process; lookup by the
// same name always returns the same object, so independent subsystems can
// share a metric by agreeing on its name.
//
// dump_text emits one flat `name=value` line per scalar — histograms
// expand to name/count, name/min, name/mean, name/p50, name/p99,
// name/p999 — and dump_json the same keys as one flat JSON object, plus a
// name/buckets array of [lower, upper, count] triples per histogram so
// external tools can re-plot full distributions. Both take an optional
// prefix so multi-process pipelines (each bench dumps its own registry)
// can namespace their lines before a collector merges them.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "mvcc/obs/counter.h"
#include "mvcc/obs/histogram.h"

namespace mvcc::obs {

// A single writer-racing-friendly value: set() publishes, update_max()
// keeps a running high-water mark (relaxed CAS, contended only while the
// mark is actually rising).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }

  void update_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }

  LatencyHistogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
  }

  // Flat `prefix + name=value` lines, sorted by name (std::map order).
  std::string dump_text(const std::string& prefix = "") const {
    std::string out;
    for (const auto& [name, value] : flat_values(prefix)) {
      out += name;
      out += '=';
      out += value;
      out += '\n';
    }
    return out;
  }

  // One flat JSON object over the same keys as dump_text, plus one
  // name/buckets array per histogram (arrays stay out of the text format,
  // whose consumers expect scalar name=value lines).
  std::string dump_json(const std::string& prefix = "") const {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : flat_values(prefix, true)) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "  \"";
      out += name;
      out += "\": ";
      out += value;
    }
    out += first ? "}" : "\n}";
    return out;
  }

 private:
  Registry() = default;

  static std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }

  std::map<std::string, std::string> flat_values(
      const std::string& prefix, bool include_buckets = false) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, std::string> out;
    for (const auto& [name, c] : counters_) {
      out[prefix + name] = std::to_string(c->value());
    }
    for (const auto& [name, g] : gauges_) {
      out[prefix + name] = std::to_string(g->value());
    }
    for (const auto& [name, h] : histograms_) {
      out[prefix + name + "/count"] = std::to_string(h->count());
      out[prefix + name + "/min"] = std::to_string(h->min());
      out[prefix + name + "/mean"] = fmt_double(h->mean());
      out[prefix + name + "/p50"] = fmt_double(h->quantile(0.50));
      out[prefix + name + "/p99"] = fmt_double(h->quantile(0.99));
      out[prefix + name + "/p999"] = fmt_double(h->quantile(0.999));
      if (include_buckets) {
        out[prefix + name + "/buckets"] = h->buckets_json();
      }
    }
    return out;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

inline Registry& registry() { return Registry::instance(); }

}  // namespace mvcc::obs
