// Umbrella header and master switch of the obs/ metrics layer.
//
// Instrumented hot paths guard every metric touch with obs::enabled():
//
//   if (obs::enabled()) stats().commit_latency.record(t.nanos());
//
// The switch has two layers so instrumentation is zero-cost when off:
//
//   * Compile time: configuring with -DMVCC_STATS=OFF defines
//     MVCC_STATS_DISABLED, making enabled() constexpr false — every guarded
//     block is dead code the compiler deletes outright.
//   * Run time (the default build): enabled() is one relaxed atomic load
//     and a branch, initialized from the MVCC_STATS environment variable
//     (unset/0 = off). A predicted-untaken branch per already-expensive
//     operation (node allocation, version retire, batch commit) is below
//     measurement noise — the property the BENCH_6.json trajectory run
//     checks against a stats-off build.
//
// set_enabled() exists for tests, which must flip collection on without
// re-exec'ing under a new environment.
#pragma once

#include <atomic>

#include "mvcc/common/env.h"
#include "mvcc/obs/counter.h"
#include "mvcc/obs/histogram.h"
#include "mvcc/obs/perf.h"
#include "mvcc/obs/registry.h"
#include "mvcc/obs/sampler.h"
#include "mvcc/obs/trace.h"

namespace mvcc::obs {

#if defined(MVCC_STATS_DISABLED)

constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}

#else

namespace detail {
// -1 = uninitialized; first enabled() call resolves the MVCC_STATS env var.
inline std::atomic<int>& enabled_flag() {
  static std::atomic<int> flag{-1};
  return flag;
}
}  // namespace detail

inline bool enabled() {
  int v = detail::enabled_flag().load(std::memory_order_relaxed);
  if (v < 0) [[unlikely]] {
    v = env_long("MVCC_STATS", 0) != 0 ? 1 : 0;
    detail::enabled_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

#endif  // MVCC_STATS_DISABLED

}  // namespace mvcc::obs
