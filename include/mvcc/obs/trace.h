// Lock-free per-thread event tracer with Chrome-trace/Perfetto JSON export.
//
// Aggregate metrics (obs/registry.h) say HOW MUCH; a trace says WHEN.
// Flattener stalls, collect pauses and sweep bursts are invisible in a
// histogram but obvious on a timeline, so the instrumented subsystems emit
// scoped spans (RAII TraceSpan: flattener commits, vm sweeps, ftree
// collects) and instant events (vm retire/acquire, release-frees,
// flattener stalls) that dump as Chrome trace-event JSON loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Recording is lock-free and allocation-free at steady state: each thread
// owns a fixed-capacity ring of events (allocated once, on that thread's
// first event) and emission is two relaxed stores plus a release bump of
// the ring head — no CAS, no sharing, no locks. The ring overwrites oldest,
// so a long run retains the most recent window per thread. The global
// tracer only takes a mutex to register a new thread's ring and to dump.
//
// The gate mirrors obs::enabled()'s two layers: under -DMVCC_STATS=OFF
// trace_on() is constexpr false and every emission site compiles out;
// otherwise it is one relaxed load, lazily seeded from the environment —
// tracing is on iff MVCC_STATS is set AND MVCC_TRACE names an output file.
// set_trace_enabled() exists for tests. With tracing off nothing is
// allocated and no thread is spawned (the tracer has no thread at all; the
// dump runs on the caller).
//
// Dumping is meant for quiescence (workers joined / maps destroyed): a
// thread still emitting while dump_json() runs can tear at most the events
// it is concurrently overwriting, never the dumper's memory safety... but
// the benches only dump after their cells are torn down.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mvcc/common/env.h"

namespace mvcc::obs {

// Nanoseconds since the first call (one steady-clock epoch per process);
// Chrome trace timestamps are derived from this.
inline std::uint64_t trace_now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// The MVCC_TRACE environment value (output path; empty = tracing off).
inline const std::string& trace_path() {
  static const std::string p = env_string("MVCC_TRACE");
  return p;
}

#if defined(MVCC_STATS_DISABLED)

constexpr bool trace_on() { return false; }
inline void set_trace_enabled(bool) {}

#else

namespace detail {
// -1 = uninitialized; the first trace_on() call resolves the environment.
inline std::atomic<int>& trace_flag() {
  static std::atomic<int> flag{-1};
  return flag;
}
}  // namespace detail

inline bool trace_on() {
  int v = detail::trace_flag().load(std::memory_order_relaxed);
  if (v < 0) [[unlikely]] {
    v = (env_long("MVCC_STATS", 0) != 0 && !trace_path().empty()) ? 1 : 0;
    detail::trace_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

inline void set_trace_enabled(bool on) {
  detail::trace_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

#endif  // MVCC_STATS_DISABLED

class Tracer {
 public:
  // One trace event. `name` must be a string literal (stored by pointer).
  struct Event {
    const char* name;
    std::uint64_t ts_ns;   // start (spans) or occurrence (instants)
    std::uint64_t dur_ns;  // 0 for instants
    std::uint64_t arg;     // free-form payload (batch size, nodes freed...)
    char ph;               // 'X' complete span, 'i' instant
  };

  static constexpr std::size_t kRingCap = std::size_t{1} << 13;

  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Lock-free fast path: writes into the calling thread's ring. Callers
  // gate on trace_on(); emit itself records unconditionally.
  void emit(const char* name, char ph, std::uint64_t ts_ns,
            std::uint64_t dur_ns, std::uint64_t arg) {
    Ring& r = local_ring();
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    r.events[static_cast<std::size_t>(h & (kRingCap - 1))] =
        Event{name, ts_ns, dur_ns, arg, ph};
    r.head.store(h + 1, std::memory_order_release);
  }

  // Events emitted since construction/reset, including ones the rings have
  // overwritten.
  std::uint64_t events_emitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->head.load(std::memory_order_acquire);
    return n;
  }

  // Chrome trace-event JSON over every thread's retained events. Valid
  // JSON even when empty; ts/dur are microseconds (the Chrome convention).
  std::string dump_json() const {
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    char buf[256];
    for (const auto& r : rings_) {
      const std::uint64_t head = r->head.load(std::memory_order_acquire);
      const std::uint64_t n = head < kRingCap ? head : kRingCap;
      for (std::uint64_t i = head - n; i < head; ++i) {
        const Event& e =
            r->events[static_cast<std::size_t>(i & (kRingCap - 1))];
        out += first ? "\n" : ",\n";
        first = false;
        if (e.ph == 'X') {
          std::snprintf(buf, sizeof(buf),
                        "{\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                        "\"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                        "\"args\": {\"v\": %llu}}",
                        e.name, static_cast<double>(e.ts_ns) / 1e3,
                        static_cast<double>(e.dur_ns) / 1e3, r->tid,
                        static_cast<unsigned long long>(e.arg));
        } else {
          std::snprintf(buf, sizeof(buf),
                        "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
                        "\"ts\": %.3f, \"pid\": 1, \"tid\": %u, "
                        "\"args\": {\"v\": %llu}}",
                        e.name, static_cast<double>(e.ts_ns) / 1e3, r->tid,
                        static_cast<unsigned long long>(e.arg));
        }
        out += buf;
      }
    }
    out += first ? "]}" : "\n]}";
    return out;
  }

  // Writes dump_json() to `path`; false on I/O failure.
  bool dump_json_to_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = dump_json();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
  }

  // Rewinds every ring (events stay allocated, heads return to zero).
  // Callers must be quiescent — tests only.
  void reset_for_test() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& r : rings_) r->head.store(0, std::memory_order_release);
  }

 private:
  // Singleton-only: local_ring()'s thread_local cache is one pointer per
  // thread, so a second Tracer instance would emit into (or dangle off)
  // whichever instance registered this thread's ring first.
  Tracer() = default;

  struct Ring {
    explicit Ring(std::uint32_t id) : events(new Event[kRingCap]), tid(id) {}
    std::unique_ptr<Event[]> events;
    std::atomic<std::uint64_t> head{0};
    std::uint32_t tid;
  };

  // The calling thread's ring, registered (and its storage allocated) on
  // first use — a thread that never traces never allocates.
  Ring& local_ring() {
    thread_local Ring* tl = nullptr;
    if (tl == nullptr) [[unlikely]] {
      std::lock_guard<std::mutex> lock(mu_);
      rings_.push_back(
          std::make_unique<Ring>(static_cast<std::uint32_t>(rings_.size())));
      tl = rings_.back().get();
    }
    return *tl;
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  // rings outlive their threads
};

// Scoped span: stamps the start on construction, emits one complete ('X')
// event on destruction. Free when tracing is off (one relaxed load). The
// arg defaults at construction and may be refined once the work is done
// (set_arg: batch size, versions freed...).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg = 0) {
    if (trace_on()) {
      name_ = name;
      arg_ = arg;
      t0_ = trace_now_ns();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_arg(std::uint64_t arg) { arg_ = arg; }

  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::instance().emit(name_, 'X', t0_, trace_now_ns() - t0_, arg_);
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint64_t arg_ = 0;
};

// Instant ('i') event, thread-scoped on the timeline.
inline void trace_instant(const char* name, std::uint64_t arg = 0) {
  if (trace_on()) {
    Tracer::instance().emit(name, 'i', trace_now_ns(), 0, arg);
  }
}

// Complete event whose start was stamped earlier with trace_now_ns() —
// for spans that cannot be a scope, like flattener batch formation (first
// op drained to commit).
inline void trace_complete_since(const char* name, std::uint64_t t0_ns,
                                 std::uint64_t arg = 0) {
  if (trace_on()) {
    Tracer::instance().emit(name, 'X', t0_ns, trace_now_ns() - t0_ns, arg);
  }
}

}  // namespace mvcc::obs
