// Lock-free striped counter for hot-path event counting.
//
// Increments land in one of kCells cache-line-padded cells selected by a
// per-thread slot, so concurrent writers from different threads touch
// different cache lines and an increment is a single relaxed fetch_add —
// no CAS loop, no sharing. Reads sum the cells; under concurrent writers
// the sum is a linearizable-enough snapshot for telemetry (every increment
// that happened-before the read is included), and at quiescence it is
// exact — the property the Obs tests assert under TSan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace mvcc::obs {

// Process-wide dense thread slot: the first call from each thread claims
// the next index. Used to stripe counters (and nothing else), so wraparound
// of the modulo into a shared cell is a performance detail, not a bug.
inline std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    cells_[thread_slot() & (kCells - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr std::size_t kCells = 32;
  static_assert((kCells & (kCells - 1)) == 0, "kCells must be a power of 2");

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  Cell cells_[kCells];
};

// Snapshot/delta helper for steady-state measurement windows: captures a
// monotone source's value at construction, delta() re-reads it. The source
// is any callable returning uint64 — an obs::Counter (via snapshot below),
// a BatchingMap accessor, a sum over per-thread op counts — so benches
// stop hand-rolling "value at measure start" subtractions.
template <class F>
class Delta {
 public:
  explicit Delta(F f) : f_(std::move(f)), base_(f_()) {}

  // Growth of the source since construction (or the last rebase).
  std::uint64_t delta() const { return f_() - base_; }

  // Restarts the window at the source's current value.
  void rebase() { base_ = f_(); }

 private:
  F f_;
  std::uint64_t base_;
};

template <class F>
Delta(F) -> Delta<F>;

// A Delta over a Counter's value; the counter must outlive the snapshot.
inline auto snapshot(const Counter& c) {
  return Delta([&c] { return c.value(); });
}

}  // namespace mvcc::obs
