// Log-bucketed (HDR-style) latency histogram with lock-free recording.
//
// record() maps a value to a bucket in a handful of instructions: values
// below 2^kSubBits are their own bucket; above that, each power-of-two
// octave is split into 2^kSubBits linear sub-buckets, so the relative
// bucket width is at most 1/2^kSubBits (12.5% for kSubBits = 3) across the
// whole range. Buckets are relaxed atomic counts, so any number of threads
// may record concurrently; quantile() walks the buckets to the requested
// rank and interpolates linearly inside the landing bucket, giving p50/p99/
// p999 readouts exact to within the bucket resolution.
//
// The covered range is [0, 2^kMaxExp) — about 73 minutes in nanoseconds.
// Larger values land in a terminal overflow bucket whose quantile readout
// is the range limit, so a wild outlier saturates instead of aliasing.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace mvcc::obs {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kMaxExp = 42;
  // Buckets 0..2^kSubBits-1 are the identity range; each octave from
  // kSubBits to kMaxExp-1 contributes 2^kSubBits sub-buckets; one more is
  // the overflow bucket.
  static constexpr std::size_t kBuckets =
      (std::size_t{kMaxExp - kSubBits + 1} << kSubBits) + 1;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::uint64_t v) {
    buckets_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Exact running minimum: one relaxed load per record, CAS only while
    // the minimum is actually falling (a handful of times per run).
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  // Smallest recorded value, exact (not bucket-resolved); 0 when empty.
  std::uint64_t min() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~std::uint64_t{0} ? 0 : m;
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  double mean() const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
  }

  // Value at quantile q in [0, 1]; 0 when empty. Walks to the bucket
  // containing rank q*(n-1) and interpolates at the midpoint convention:
  // a bucket's k samples are spread evenly across its width, so a single
  // sample reads back as its bucket's midpoint (within resolution of the
  // recorded value).
  double quantile(double q) const {
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t counts[kBuckets];
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      n += counts[i];
    }
    if (n == 0) return 0.0;
    const double rank = q * static_cast<double>(n - 1);
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts[i] == 0) continue;
      const double last_in_bucket =
          static_cast<double>(before + counts[i] - 1);
      if (rank <= last_in_bucket) {
        // Identity-range buckets have width 1 and hold integers, so their
        // readout is exact; wider buckets interpolate at the midpoint.
        if (i < (std::size_t{1} << kSubBits)) return static_cast<double>(i);
        const double pos = rank - static_cast<double>(before) + 0.5;
        const double frac = pos / static_cast<double>(counts[i]);
        return bucket_lower(i) +
               (bucket_upper(i) - bucket_lower(i)) * frac;
      }
      before += counts[i];
    }
    return bucket_upper(kBuckets - 1);  // unreachable; keeps -Wreturn happy
  }

  static std::size_t index_of(std::uint64_t v) {
    if (v < (std::uint64_t{1} << kSubBits)) return static_cast<std::size_t>(v);
    if (v >= (std::uint64_t{1} << kMaxExp)) return kBuckets - 1;
    const unsigned top = std::bit_width(v) - 1;  // >= kSubBits
    const std::uint64_t sub = (v >> (top - kSubBits)) & kSubMask;
    return ((std::size_t{top} - kSubBits + 1) << kSubBits) +
           static_cast<std::size_t>(sub);
  }

  // Non-empty buckets as a JSON array of [lower, upper, count] triples, so
  // external tools can re-plot the full distribution (not just the
  // quantiles the flat dumps carry) without re-running the bench.
  std::string buckets_json() const {
    std::string out = "[";
    bool first = true;
    char buf[96];
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s[%.0f, %.0f, %llu]",
                    first ? "" : ", ", bucket_lower(i), bucket_upper(i),
                    static_cast<unsigned long long>(c));
      first = false;
      out += buf;
    }
    out += "]";
    return out;
  }

  // Bucket boundaries, public so dumps and tests can label distributions:
  // bucket i covers [bucket_lower(i), bucket_upper(i)).
  static double bucket_lower(std::size_t i) {
    if (i < (std::size_t{1} << kSubBits)) return static_cast<double>(i);
    if (i == kBuckets - 1) {
      return static_cast<double>(std::uint64_t{1} << kMaxExp);
    }
    const unsigned top =
        static_cast<unsigned>(i >> kSubBits) + kSubBits - 1;
    const std::uint64_t sub = i & kSubMask;
    return static_cast<double>(((std::uint64_t{1} << kSubBits) + sub)
                               << (top - kSubBits));
  }

  static double bucket_upper(std::size_t i) {
    if (i < (std::size_t{1} << kSubBits)) return static_cast<double>(i + 1);
    if (i == kBuckets - 1) {
      // Overflow bucket: saturate at the range limit rather than invent a
      // width for unbounded values.
      return static_cast<double>(std::uint64_t{1} << kMaxExp);
    }
    const unsigned top =
        static_cast<unsigned>(i >> kSubBits) + kSubBits - 1;
    return bucket_lower(i) +
           static_cast<double>(std::uint64_t{1} << (top - kSubBits));
  }

 private:
  static constexpr std::uint64_t kSubMask =
      (std::uint64_t{1} << kSubBits) - 1;

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
};

}  // namespace mvcc::obs
