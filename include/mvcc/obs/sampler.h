// Time-series footprint sampler: periodic snapshots of registered probes.
//
// The metrics layer so far records high-water marks; the space-bounded
// MVGC follow-up papers (arXiv 2108.02775, 2212.13557) evaluate collectors
// by the CURVE of live space over time, which a single max cannot show. A
// Sampler closes that gap: subsystems register named probes (a probe is a
// callable returning the current value of a gauge-like quantity, e.g.
// ftree/live_bytes), start() fixes the column set and spawns a background
// thread that snapshots every probe each period into a bounded ring of
// timestamped rows, and dump_csv() emits the retained window as
// `t_ms,col,...` CSV for plotting footprint-over-time curves.
//
// Design points:
//   * The ring is bounded (default 4096 rows) and overwrites oldest, so a
//     long run retains the most recent window instead of growing without
//     bound; rows() / dump_csv() return the survivors oldest-first.
//   * start() takes an initial sample and stop() takes a final one, so
//     even a run shorter than one period produces a two-point curve whose
//     endpoints bracket the workload.
//   * Columns are fixed at start(): probes registered later join the next
//     start. register_probe is idempotent by name (re-registration
//     replaces the callable), so subsystem registration helpers may be
//     called any number of times.
//   * start(0, cap) is manual mode — no thread; tests drive sample_once()
//     for deterministic ring-wrap coverage.
//
// Sampling is mutex-serialized against registration and dumping; the
// sampled SUBSYSTEMS stay lock-free (probes read relaxed atomics). Nothing
// here runs unless a bench or test explicitly starts the sampler — the
// bench glue (bench_util.h ObsSession) gates that on obs::enabled() and
// MVCC_SAMPLE_MS > 0, so a stats-off run has no sampler thread and no
// sampler allocations.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace mvcc::obs {

class Sampler {
 public:
  struct Row {
    double t_ms;                       // since start(), monotone
    std::vector<std::int64_t> values;  // one per column, column order
  };

  Sampler() = default;
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler() { stop(); }

  // The process-wide sampler the subsystem registration helpers and the
  // bench glue share; standalone instances work identically (tests).
  static Sampler& instance() {
    static Sampler s;
    return s;
  }

  // Registers (or replaces) a named probe. Takes effect at the next
  // start(); safe to call at any time from any thread.
  void register_probe(std::string name, std::function<std::int64_t()> fn) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [n, f] : probes_) {
      if (n == name) {
        f = std::move(fn);
        return;
      }
    }
    probes_.emplace_back(std::move(name), std::move(fn));
  }

  // Fixes the column set, clears the ring, takes the initial sample, and —
  // for period_ms > 0 — spawns the sampling thread. period_ms == 0 is
  // manual mode (callers drive sample_once()). Returns false when already
  // running or period_ms is negative.
  bool start(long period_ms, std::size_t capacity = 4096) {
    std::unique_lock<std::mutex> lock(mu_);
    if (running_ || period_ms < 0 || capacity == 0) return false;
    cols_.clear();
    fns_.clear();
    for (const auto& [n, f] : probes_) {
      cols_.push_back(n);
      fns_.push_back(f);
    }
    ring_.assign(capacity, Row{});
    taken_ = 0;
    epoch_ = Clock::now();
    running_ = true;
    stop_requested_ = false;
    sample_locked();
    if (period_ms > 0) {
      thread_ = std::thread([this, period_ms] { run(period_ms); });
    }
    return true;
  }

  // Joins the thread (if any) and takes the final sample, so the last row
  // reflects the state at stop time. Idempotent, and safe for concurrent
  // callers: the thread handle is swapped out under mu_, so exactly one
  // caller joins; the others skip straight to the final sample.
  void stop() {
    std::thread t;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!running_) return;
      stop_requested_ = true;
      t = std::move(thread_);
    }
    cv_.notify_all();
    if (t.joinable()) t.join();
    std::lock_guard<std::mutex> lock(mu_);
    sample_locked();
    running_ = false;
  }

  bool running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
  }

  // One snapshot of every column, timestamped now. No-op unless started.
  void sample_once() {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) sample_locked();
  }

  // Total samples taken since start(), including rows the ring has since
  // overwritten.
  std::uint64_t samples_taken() const {
    std::lock_guard<std::mutex> lock(mu_);
    return taken_;
  }

  std::vector<std::string> columns() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cols_;
  }

  // Retained rows, oldest first.
  std::vector<Row> rows() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Row> out;
    const std::uint64_t cap = ring_.size();
    const std::uint64_t n = taken_ < cap ? taken_ : cap;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = taken_ - n; i < taken_; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i % cap)]);
    }
    return out;
  }

  // `t_ms,col,...` header plus one line per retained row, oldest first.
  std::string dump_csv() const {
    std::string out = "t_ms";
    for (const std::string& c : columns()) {
      out += ',';
      out += c;
    }
    out += '\n';
    for (const Row& r : rows()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", r.t_ms);
      out += buf;
      for (std::int64_t v : r.values) {
        out += ',';
        out += std::to_string(v);
      }
      out += '\n';
    }
    return out;
  }

  // Writes dump_csv() to `path`; false on I/O failure.
  bool dump_csv_to_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string csv = dump_csv();
    const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void run(long period_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
      sample_locked();
    }
  }

  void sample_locked() {
    Row r;
    r.t_ms = std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
                 .count();
    r.values.reserve(fns_.size());
    for (const auto& f : fns_) r.values.push_back(f());
    ring_[static_cast<std::size_t>(taken_ % ring_.size())] = std::move(r);
    ++taken_;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::pair<std::string, std::function<std::int64_t()>>> probes_;
  std::vector<std::string> cols_;                   // fixed at start()
  std::vector<std::function<std::int64_t()>> fns_;  // parallel to cols_
  std::vector<Row> ring_;
  std::uint64_t taken_ = 0;
  Clock::time_point epoch_{};
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace mvcc::obs
