// Raw node layer of the functional (path-copying) balanced tree.
//
// This is the substrate the paper's multiversioning rests on: every update
// produces a new version that shares all untouched subtrees with its
// predecessors, and intrusive reference counts make garbage collection
// precise — `collect` frees exactly the nodes reachable from no surviving
// version, in time proportional to the number freed (the tree analogue of
// Theorem 4.2).
//
// Balancing is a height-balanced (AVL) join tree: `insert`, `join`, `split`
// and `union_` all preserve the AVL invariant, so `join`-based bulk
// operations (union / multi_insert) compose with point updates.
//
// Ownership protocol: a Node* is an owned reference. Every function taking
// Node* by value CONSUMES that reference (the functional analogue of move
// semantics); call `share` first to keep using a tree afterwards. Functions
// taking const Node* only read. Reference counts are atomic: snapshot
// holders may share/collect versions from any thread concurrently with the
// (externally serialized) mutator, and the bulk operations (`union_`,
// `multi_insert`, `build_sorted`) fork their independent recursive calls
// across worker threads (MVCC_THREADS) — each worker consumes a disjoint
// set of owned references, so the counts stay exact.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "mvcc/alloc/pool.h"
#include "mvcc/common/env.h"
#include "mvcc/exec/pool.h"
#include "mvcc/obs/obs.h"

namespace mvcc::ftree {

// Global live-node counter, shared by all instantiations; tests use it to
// prove refcount exactness (it returns to zero once every version dies).
inline std::atomic<long long> g_live_nodes{0};

inline long long live_nodes() {
  return g_live_nodes.load(std::memory_order_relaxed);
}

// Memory-footprint telemetry (the metric the space-bounded MVGC follow-up
// work tracks alongside throughput): byte-exact live-heap accounting and
// high-water marks, maintained only under obs::enabled() so the default
// hot path keeps its single counter increment.
//
//   ftree/live_nodes_hwm   max nodes simultaneously live (all trees)
//   ftree/live_bytes_hwm   the same high-water mark in node bytes
inline std::atomic<long long> g_live_bytes{0};

inline obs::Gauge& live_nodes_hwm() {
  static obs::Gauge& g = obs::registry().gauge("ftree/live_nodes_hwm");
  return g;
}

inline obs::Gauge& live_bytes_hwm() {
  static obs::Gauge& g = obs::registry().gauge("ftree/live_bytes_hwm");
  return g;
}

inline void note_nodes_alloc(long long nodes_now, std::size_t bytes) {
  const long long bytes_now =
      g_live_bytes.fetch_add(static_cast<long long>(bytes),
                             std::memory_order_relaxed) +
      static_cast<long long>(bytes);
  live_nodes_hwm().update_max(nodes_now);
  live_bytes_hwm().update_max(bytes_now);
}

inline void note_nodes_freed(std::size_t bytes) {
  g_live_bytes.fetch_sub(static_cast<long long>(bytes),
                         std::memory_order_relaxed);
}

// Registers the tree's footprint gauges with the obs sampler, so a
// sampling run records live_nodes/live_bytes CURVES (the space-bounded
// MVGC plots), not just the high-water marks above. Idempotent; called by
// the bench glue before the sampler starts.
inline void register_footprint_probes() {
  obs::Sampler::instance().register_probe("ftree/live_nodes", [] {
    return static_cast<std::int64_t>(
        g_live_nodes.load(std::memory_order_relaxed));
  });
  obs::Sampler::instance().register_probe("ftree/live_bytes", [] {
    return static_cast<std::int64_t>(
        g_live_bytes.load(std::memory_order_relaxed));
  });
}

// Augmentation that carries nothing; the default for plain maps.
template <class K, class V>
struct NoAug {
  struct T {};
  static T zero() { return {}; }
  static T leaf(const K&, const V&) { return {}; }
  static T combine(const T&, const T&, const T&) { return {}; }
};

// Augmentation summing values over subtrees; powers O(log n) range sums.
template <class K, class V>
struct AugSum {
  using T = V;
  static T zero() { return T{}; }
  static T leaf(const K&, const V& v) { return v; }
  static T combine(const T& l, const T& m, const T& r) { return l + m + r; }
};

// Height-packed node layout: height and weight share one 64-bit word
// (7 bits of height — an AVL tree needs height > 127 only beyond 2^87
// nodes — under 57 bits of weight), and an empty augmentation occupies no
// storage via [[no_unique_address]]. A NoAug<u64, u64> node is 48 bytes
// instead of the naive 64: three nodes per pair of cache lines on the
// collect/insert hot paths.
template <class K, class V, class A = NoAug<K, V>>
struct Node {
  static constexpr std::uint32_t kHeightBits = 7;
  static constexpr std::uint64_t kHeightMask = (1u << kHeightBits) - 1;

  Node* left;
  Node* right;
  std::atomic<std::uint32_t> refs;
  [[no_unique_address]] typename A::T aug;
  K key;
  V val;
  std::uint64_t hw;  // weight << kHeightBits | height

  std::uint32_t height() const {
    return static_cast<std::uint32_t>(hw & kHeightMask);
  }
  std::uint64_t weight() const { return hw >> kHeightBits; }

  Node(const K& k, const V& v, Node* l, Node* r)
      : left(l),
        right(r),
        refs(1),
        aug(A::combine(l != nullptr ? l->aug : A::zero(), A::leaf(k, v),
                       r != nullptr ? r->aug : A::zero())),
        key(k),
        val(v),
        hw(((1 + (l != nullptr ? l->weight() : 0u) +
             (r != nullptr ? r->weight() : 0u))
            << kHeightBits) |
           (1 + std::max(l != nullptr ? l->height() : 0u,
                         r != nullptr ? r->height() : 0u))) {}
};

template <class K, class V, class A>
inline std::uint32_t height_of(const Node<K, V, A>* t) {
  return t != nullptr ? t->height() : 0;
}

template <class K, class V, class A>
inline std::uint64_t weight_of(const Node<K, V, A>* t) {
  return t != nullptr ? t->weight() : 0;
}

template <class K, class V, class A>
inline typename A::T aug_of(const Node<K, V, A>* t) {
  return t != nullptr ? t->aug : A::zero();
}

// The allocation policy every node goes through — the explicit seam
// between the tree algorithms and the alloc/ slab pool. `create`/`destroy`
// are the unit operations (routing honors MVCC_ALLOC: slab pool by
// default, plain operator new/delete under "malloc"); `free_batch` hands
// an exact freed set's raw storage (destructors already run) back to the
// pool wholesale, which is what makes a precise collect O(freed) in the
// allocator too, not just in the traversal.
struct NodeAlloc {
  template <class N, class... Args>
  static N* create(Args&&... args) {
    return alloc::create<N>(std::forward<Args>(args)...);
  }

  template <class N>
  static void destroy(N* n) {
    alloc::destroy(n);
  }

  template <class N>
  static void free_batch(std::vector<void*>& mem) {
    alloc::deallocate_batch(mem.data(), mem.size(), sizeof(N));
    mem.clear();
  }
};

// Allocates a node owning the references `l` and `r` (no count adjustment:
// ownership transfers in). The returned pointer is one owned reference.
template <class K, class V, class A>
Node<K, V, A>* make_node(const K& k, const V& v, Node<K, V, A>* l,
                         Node<K, V, A>* r) {
  const long long now =
      g_live_nodes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) note_nodes_alloc(now, sizeof(Node<K, V, A>));
  return NodeAlloc::create<Node<K, V, A>>(k, v, l, r);
}

// Takes an additional owned reference to `t` (which may be null).
template <class K, class V, class A>
inline Node<K, V, A>* share(Node<K, V, A>* t) {
  if (t != nullptr) t->refs.fetch_add(1, std::memory_order_relaxed);
  return t;
}

// Releases one owned reference to `t` and frees every node that becomes
// unreachable. Iterative, so no tree depth can overflow the stack, and the
// work is O(freed + 1): one visit per freed node plus one decrement per
// edge crossing out of the freed set. Returns the number of nodes freed.
template <class K, class V, class A>
std::size_t collect(Node<K, V, A>* t) {
  if (t == nullptr ||
      t->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return 0;
  }
  // Collect pauses are the timeline event GC papers plot; the span only
  // covers calls that actually free (the early returns above are the hot
  // no-op path). Nested collects through ~V emit nested spans.
  obs::TraceSpan span("ftree/collect");
  std::size_t freed = 0;
  // The thread-local stack is reused across calls so steady-state version
  // drops don't reallocate it — but `delete dead` can reenter collect at
  // this very instantiation when V's destructor drops another tree of the
  // same type (map-of-maps payloads, txn batching vectors, the inverted
  // index). The in-use guard routes such nested calls to a plain local
  // stack, leaving the outer iteration's state intact; only the outermost
  // frame — the steady-state path — touches the shared allocation.
  thread_local std::vector<Node<K, V, A>*> shared_stack;
  thread_local std::vector<void*> shared_freed_mem;
  thread_local bool shared_stack_in_use = false;
  std::vector<Node<K, V, A>*> local_stack;
  std::vector<void*> local_freed_mem;
  const bool outermost = !shared_stack_in_use;
  std::vector<Node<K, V, A>*>& stack = outermost ? shared_stack : local_stack;
  // Destructors run inline (a payload's ~V may legitimately reenter
  // collect), but the freed RAW STORAGE is batched and returned to the
  // allocator in one deallocate_batch at the end — the whole freed set
  // flows back to the thread cache / depot wholesale instead of one
  // heap free at a time.
  std::vector<void*>& freed_mem =
      outermost ? shared_freed_mem : local_freed_mem;
  if (outermost) {
    shared_stack_in_use = true;
    stack.clear();
    freed_mem.clear();
  }
  stack.push_back(t);
  while (!stack.empty()) {
    Node<K, V, A>* dead = stack.back();
    stack.pop_back();
    for (Node<K, V, A>* child : {dead->left, dead->right}) {
      if (child != nullptr &&
          child->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        stack.push_back(child);
      }
    }
    dead->~Node();  // may reenter collect through ~V; see guard above
    freed_mem.push_back(dead);
    ++freed;
  }
  NodeAlloc::free_batch<Node<K, V, A>>(freed_mem);
  if (outermost) shared_stack_in_use = false;
  g_live_nodes.fetch_sub(static_cast<long long>(freed),
                         std::memory_order_relaxed);
  if (obs::enabled()) note_nodes_freed(freed * sizeof(Node<K, V, A>));
  span.set_arg(freed);
  return freed;
}

// Deconstructs an owned reference to `t` (non-null): copies out key/value,
// hands the caller owned references to both children, and releases `t`.
// When the caller holds the only reference the children's counts are stolen
// rather than bumped, so hot single-version paths touch each count once.
// (Observing refs == 1 is stable: we hold a reference, so it is ours, and
// no other thread can legitimately share or drop a node it doesn't own.)
template <class K, class V, class A>
inline void expose(Node<K, V, A>* t, Node<K, V, A>** l, Node<K, V, A>** r,
                   K* k, V* v) {
  assert(t != nullptr);
  *k = t->key;
  *v = t->val;
  if (t->refs.load(std::memory_order_acquire) == 1) {
    *l = t->left;
    *r = t->right;
    NodeAlloc::destroy(t);
    g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
    if (obs::enabled()) note_nodes_freed(sizeof(Node<K, V, A>));
  } else {
    // Shared with other versions: bump the children BEFORE dropping t (we
    // still own t, so its child references pin them), then check whether
    // our drop turned out to be the last — a concurrent collect of another
    // version sharing t may have released its reference between our load
    // above and the fetch_sub below. Ignoring that result would leak t and
    // strand one count on each child.
    *l = share(t->left);
    *r = share(t->right);
    if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // We were the last owner after all. Free t, dropping its child
      // references — which cannot hit zero, because the shares above are
      // ours and still outstanding.
      if (t->left != nullptr) {
        t->left->refs.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (t->right != nullptr) {
        t->right->refs.fetch_sub(1, std::memory_order_acq_rel);
      }
      NodeAlloc::destroy(t);
      g_live_nodes.fetch_sub(1, std::memory_order_relaxed);
      if (obs::enabled()) note_nodes_freed(sizeof(Node<K, V, A>));
    }
  }
}

// Builds a node over (l, k/v, r) when their heights differ by at most two,
// restoring the AVL invariant with at most a double rotation. This is the
// rebalancing step shared by insert and join. Consumes l and r.
template <class K, class V, class A>
Node<K, V, A>* balance_node(Node<K, V, A>* l, const K& k, const V& v,
                            Node<K, V, A>* r) {
  const std::uint32_t hl = height_of(l);
  const std::uint32_t hr = height_of(r);
  if (hl > hr + 1) {
    Node<K, V, A>*ll, *lr;
    K lk;
    V lv;
    expose(l, &ll, &lr, &lk, &lv);
    if (height_of(ll) >= height_of(lr)) {
      return make_node(lk, lv, ll, make_node(k, v, lr, r));
    }
    Node<K, V, A>*ml, *mr;
    K mk;
    V mv;
    expose(lr, &ml, &mr, &mk, &mv);
    return make_node(mk, mv, make_node(lk, lv, ll, ml),
                     make_node(k, v, mr, r));
  }
  if (hr > hl + 1) {
    Node<K, V, A>*rl, *rr;
    K rk;
    V rv;
    expose(r, &rl, &rr, &rk, &rv);
    if (height_of(rr) >= height_of(rl)) {
      return make_node(rk, rv, make_node(k, v, l, rl), rr);
    }
    Node<K, V, A>*ml, *mr;
    K mk;
    V mv;
    expose(rl, &ml, &mr, &mk, &mv);
    return make_node(mk, mv, make_node(k, v, l, ml),
                     make_node(rk, rv, mr, rr));
  }
  return make_node(k, v, l, r);
}

// Path-copying insert-or-replace. Consumes `t`; returns the new version's
// root. O(log n) new nodes; everything off the search path is shared.
template <class K, class V, class A>
Node<K, V, A>* insert(Node<K, V, A>* t, const K& k, const V& v) {
  if (t == nullptr) return make_node<K, V, A>(k, v, nullptr, nullptr);
  Node<K, V, A>*l, *r;
  K tk;
  V tv;
  expose(t, &l, &r, &tk, &tv);
  if (k < tk) return balance_node(insert(l, k, v), tk, tv, r);
  if (tk < k) return balance_node(l, tk, tv, insert(r, k, v));
  return make_node(k, v, l, r);
}

// Joins l < k < r into one AVL tree, for arbitrary height difference.
// Consumes l and r. O(|h(l) - h(r)|).
template <class K, class V, class A>
Node<K, V, A>* join(Node<K, V, A>* l, const K& k, const V& v,
                    Node<K, V, A>* r) {
  const std::uint32_t hl = height_of(l);
  const std::uint32_t hr = height_of(r);
  if (hl > hr + 1) {
    Node<K, V, A>*ll, *lr;
    K lk;
    V lv;
    expose(l, &ll, &lr, &lk, &lv);
    return balance_node(ll, lk, lv, join(lr, k, v, r));
  }
  if (hr > hl + 1) {
    Node<K, V, A>*rl, *rr;
    K rk;
    V rv;
    expose(r, &rl, &rr, &rk, &rv);
    return balance_node(join(l, k, v, rl), rk, rv, rr);
  }
  return make_node(k, v, l, r);
}

template <class K, class V, class A>
struct SplitResult {
  Node<K, V, A>* left;
  Node<K, V, A>* right;
  bool found;
  V value;
};

// Splits `t` at `k` into keys < k and keys > k, reporting k's value if
// present. Consumes `t`. O(log n).
template <class K, class V, class A>
SplitResult<K, V, A> split(Node<K, V, A>* t, const K& k) {
  if (t == nullptr) return {nullptr, nullptr, false, V{}};
  Node<K, V, A>*l, *r;
  K tk;
  V tv;
  expose(t, &l, &r, &tk, &tv);
  if (k < tk) {
    SplitResult<K, V, A> s = split(l, k);
    return {s.left, join(s.right, tk, tv, r), s.found, s.value};
  }
  if (tk < k) {
    SplitResult<K, V, A> s = split(r, k);
    return {join(l, tk, tv, s.left), s.right, s.found, s.value};
  }
  return {l, r, true, tv};
}

// Fork-join granularity for the bulk operations: a recursive subproblem
// below this many nodes of work stays sequential, so the fork cost is
// always amortized over thousands of node visits. Tunable (MVCC_GRAIN via
// config().grain, default 2048, floored at kGrainFloor) for grain sweeps;
// resolved once per process, so set it before the first bulk op.
inline std::uint64_t bulk_grain() {
  static const std::uint64_t g = static_cast<std::uint64_t>(config().grain);
  return g;
}

namespace detail {

// Resolves a caller-supplied worker budget: positive means exactly that
// many workers, zero (the default) means config().threads (MVCC_THREADS).
inline int bulk_budget(int threads) {
  return threads > 0 ? threads : config().threads;
}

// Recursive core of union_ with a fork-join worker budget. The two
// subproblems operate on key-disjoint trees (a split partitions by key and
// these are search trees, so no node is reachable from both sides), hence
// each branch consumes its own set of owned references and the forked task
// never touches the caller's. The result is identical for every budget:
// the computation DAG does not depend on execution order.
template <class K, class V, class A>
Node<K, V, A>* union_rec(Node<K, V, A>* a, Node<K, V, A>* b, int budget) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  Node<K, V, A>*bl, *br;
  K bk;
  V bv;
  expose(b, &bl, &br, &bk, &bv);
  SplitResult<K, V, A> s = split(a, bk);
  if (budget > 1 &&
      std::min(weight_of(s.left) + weight_of(bl),
               weight_of(s.right) + weight_of(br)) >= bulk_grain()) {
    const int lb = budget / 2;
    const int rb = budget - lb;
    // Fork the right subproblem onto the shared pool, recurse left on this
    // thread; invoke2's joiner helps run queued forks, and a pool with no
    // spawnable workers degrades to sequential self-execution — no
    // per-site fallback needed, and no owned reference can be dropped.
    auto [l, r] = exec::invoke2(
        [l0 = s.left, bl, lb] { return union_rec(l0, bl, lb); },
        [r0 = s.right, br, rb] { return union_rec(r0, br, rb); });
    return join(l, bk, bv, r);
  }
  // Below the grain on one side (or out of budget): recurse in place. The
  // budget is passed through so a lopsided split can still fork deeper
  // down; the calls run one after the other, so concurrency never exceeds
  // the budget.
  return join(union_rec(s.left, bl, budget), bk, bv,
              union_rec(s.right, br, budget));
}

// Recursive core of build_sorted with a fork-join worker budget; the two
// halves of the span are disjoint, so the same ownership argument applies.
template <class K, class V, class A>
Node<K, V, A>* build_sorted_rec(std::span<const std::pair<K, V>> entries,
                                int budget) {
  if (entries.empty()) return nullptr;
  const std::size_t mid = entries.size() / 2;
  if (budget > 1 && entries.size() >= 2 * bulk_grain()) {
    const int lb = budget / 2;
    const int rb = budget - lb;
    auto [l, r] = exec::invoke2(
        [e = entries.first(mid), lb] {
          return build_sorted_rec<K, V, A>(e, lb);
        },
        [e = entries.subspan(mid + 1), rb] {
          return build_sorted_rec<K, V, A>(e, rb);
        });
    return make_node<K, V, A>(entries[mid].first, entries[mid].second, l, r);
  }
  return make_node<K, V, A>(
      entries[mid].first, entries[mid].second,
      build_sorted_rec<K, V, A>(entries.first(mid), budget),
      build_sorted_rec<K, V, A>(entries.subspan(mid + 1), budget));
}

}  // namespace detail

// Union of two versions; on duplicate keys the entry from `b` wins (so
// unioning a delta over a corpus applies the delta). Consumes both.
// O(m log(n/m + 1)) work for |b| = m <= n = |a| — the join-tree bound.
// The independent recursive calls are forked across `threads` workers
// (0 = config().threads) above the bulk_grain() cutoff; the resulting tree is
// bit-identical for every worker count. Inputs too small to ever fork
// skip the worker-count resolution entirely, so small unions stay free
// of getenv/sysconf traffic.
template <class K, class V, class A>
Node<K, V, A>* union_(Node<K, V, A>* a, Node<K, V, A>* b, int threads = 0) {
  const int budget = weight_of(a) + weight_of(b) >= 2 * bulk_grain()
                         ? detail::bulk_budget(threads)
                         : 1;
  return detail::union_rec(a, b, budget);
}

// Builds a perfectly balanced tree over strictly increasing entries. O(n)
// work, forked across `threads` workers (0 = config().threads).
template <class K, class V, class A>
Node<K, V, A>* build_sorted(std::span<const std::pair<K, V>> entries,
                            int threads = 0) {
  const int budget = entries.size() >= 2 * bulk_grain()
                         ? detail::bulk_budget(threads)
                         : 1;
  return detail::build_sorted_rec<K, V, A>(entries, budget);
}

// Sorts a batch by key and keeps only the last entry per key, the form
// multi_insert expects (later updates win, matching repeated `insert`).
template <class K, class V>
void prepare_batch(std::vector<std::pair<K, V>>& batch) {
  std::stable_sort(
      batch.begin(), batch.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < batch.size();) {
    std::size_t j = i;
    while (j + 1 < batch.size() && !(batch[i].first < batch[j + 1].first)) {
      ++j;
    }
    batch[out++] = std::move(batch[j]);
    i = j + 1;
  }
  batch.resize(out);
}

// Applies a prepared (sorted, deduplicated) batch in one bulk operation:
// build a tree over the batch, then union it over `t`. Consumes `t`. Both
// phases fork across `threads` workers (0 = config().threads).
template <class K, class V, class A>
Node<K, V, A>* multi_insert(Node<K, V, A>* t,
                            std::span<const std::pair<K, V>> batch,
                            int threads = 0) {
  const int budget = weight_of(t) + batch.size() >= 2 * bulk_grain()
                         ? detail::bulk_budget(threads)
                         : 1;
  return detail::union_rec(
      t, detail::build_sorted_rec<K, V, A>(batch, budget), budget);
}

// Read-only point lookup; returns null when absent.
template <class K, class V, class A>
const V* find(const Node<K, V, A>* t, const K& k) {
  while (t != nullptr) {
    if (k < t->key) {
      t = t->left;
    } else if (t->key < k) {
      t = t->right;
    } else {
      return &t->val;
    }
  }
  return nullptr;
}

// Aggregate over keys >= lo within `t`.
template <class K, class V, class A>
typename A::T aug_ge(const Node<K, V, A>* t, const K& lo) {
  if (t == nullptr) return A::zero();
  if (t->key < lo) return aug_ge(t->right, lo);
  return A::combine(aug_ge(t->left, lo), A::leaf(t->key, t->val),
                    aug_of(t->right));
}

// Aggregate over keys <= hi within `t`.
template <class K, class V, class A>
typename A::T aug_le(const Node<K, V, A>* t, const K& hi) {
  if (t == nullptr) return A::zero();
  if (hi < t->key) return aug_le(t->left, hi);
  return A::combine(aug_of(t->left), A::leaf(t->key, t->val),
                    aug_le(t->right, hi));
}

// Aggregate over keys in [lo, hi]; the empty range yields A::zero(). Reads
// O(log n) nodes by consuming whole-subtree aggregates at the boundary.
template <class K, class V, class A>
typename A::T aug_range(const Node<K, V, A>* t, const K& lo, const K& hi) {
  if (t == nullptr) return A::zero();
  if (t->key < lo) return aug_range(t->right, lo, hi);
  if (hi < t->key) return aug_range(t->left, lo, hi);
  return A::combine(aug_ge(t->left, lo), A::leaf(t->key, t->val),
                    aug_le(t->right, hi));
}

// In-order traversal: f(key, value) for every entry.
template <class K, class V, class A, class F>
void for_each(const Node<K, V, A>* t, F&& f) {
  if (t == nullptr) return;
  for_each(t->left, f);
  f(t->key, t->val);
  for_each(t->right, f);
}

// In-order traversal with early exit: f(key, value) returns false to stop.
// Returns whether the traversal ran to completion. Powers bounded scans
// like the inverted index's limit-k intersection.
template <class K, class V, class A, class F>
bool for_each_while(const Node<K, V, A>* t, F&& f) {
  if (t == nullptr) return true;
  if (!for_each_while(t->left, f)) return false;
  if (!f(t->key, t->val)) return false;
  return for_each_while(t->right, f);
}

}  // namespace mvcc::ftree
