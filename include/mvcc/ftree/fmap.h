// Value-semantic facade over the raw functional-tree node layer.
//
// An FMap is one version of an ordered map: copying it is O(1) (shares the
// whole tree, bumping one reference count), every "mutating" operation
// returns a new version, and destruction releases exactly this version's
// private nodes. This is the handle type the vm/ and txn/ layers traffic
// in: a reader pins a version by holding an FMap, and precise GC falls out
// of the destructor.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "mvcc/ftree/ops.h"

namespace mvcc::ftree {

template <class K, class V, class A = NoAug<K, V>>
class FMap {
 public:
  using Entry = std::pair<K, V>;

  FMap() = default;

  FMap(const FMap& other) : root_(ftree::share(other.root_)) {}

  FMap(FMap&& other) noexcept : root_(std::exchange(other.root_, nullptr)) {}

  FMap& operator=(const FMap& other) {
    if (this != &other) {
      Node<K, V, A>* next = ftree::share(other.root_);
      ftree::collect(root_);
      root_ = next;
    }
    return *this;
  }

  FMap& operator=(FMap&& other) noexcept {
    if (this != &other) {
      ftree::collect(root_);
      root_ = std::exchange(other.root_, nullptr);
    }
    return *this;
  }

  ~FMap() { ftree::collect(root_); }

  // Builds a map from arbitrary entries; on duplicate keys the last entry
  // wins, matching repeated inserted(). O(n log n) for the sort, O(n) build.
  static FMap from_entries(std::vector<Entry> entries) {
    prepare_batch(entries);
    return FMap(build_sorted<K, V, A>(std::span<const Entry>(entries)));
  }

  // A new version with k -> v set (insert-or-replace). O(log n).
  FMap inserted(const K& k, const V& v) const {
    return FMap(ftree::insert(ftree::share(root_), k, v));
  }

  // A new version with every entry of `other` applied over this one
  // (other's values win on duplicate keys). O(m log(n/m + 1)) work, forked
  // across `threads` workers (0 = config().threads, 1 = sequential); the
  // result is identical for every worker count.
  FMap union_with(const FMap& other, int threads = 0) const {
    return FMap(
        union_(ftree::share(root_), ftree::share(other.root_), threads));
  }

  // A new version with a prepared (see prepare_batch) batch applied in one
  // bulk join-based operation. O(m log(n/m + 1)) work, forked across
  // `threads` workers (0 = config().threads).
  FMap multi_inserted(std::span<const Entry> batch, int threads = 0) const {
    return FMap(multi_insert(ftree::share(root_), batch, threads));
  }

  // Read-only lookup; the pointer is valid while any version holding the
  // node is alive. O(log n).
  const V* find(const K& k) const { return ftree::find(root_, k); }

  // Aggregate of A over keys in [lo, hi]. O(log n).
  typename A::T aug_range(const K& lo, const K& hi) const {
    return ftree::aug_range(root_, lo, hi);
  }

  std::size_t size() const { return static_cast<std::size_t>(weight_of(root_)); }
  bool empty() const { return root_ == nullptr; }

  // All entries in key order. O(n).
  std::vector<Entry> to_vector() const {
    std::vector<Entry> out;
    out.reserve(size());
    ftree::for_each(root_,
                    [&out](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  // In-order traversal: f(key, value) for every entry.
  template <class F>
  void for_each(F&& f) const {
    ftree::for_each(root_, f);
  }

  // In-order traversal with early exit: f returns false to stop. Returns
  // whether the traversal ran to completion.
  template <class F>
  bool for_each_while(F&& f) const {
    return ftree::for_each_while(root_, f);
  }

  // The underlying version root; read-only, for tests and diagnostics.
  const Node<K, V, A>* root() const { return root_; }

 private:
  explicit FMap(Node<K, V, A>* root) : root_(root) {}

  Node<K, V, A>* root_ = nullptr;
};

}  // namespace mvcc::ftree
