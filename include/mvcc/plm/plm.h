// Persistent list machine (PLM): the paper's abstract memory model for
// multiversioned state, Section 4.
//
// A Machine owns a heap of immutable tuples whose slots hold either 64-bit
// integers or references to other tuples, forming an arbitrary DAG. Because
// tuples are immutable, reference counting is exact: a tuple is garbage iff
// its count is zero, and `collect` (Theorem 4.2) reclaims the entire
// unreachable set in O(S + 1) work for S tuples freed — each freed tuple is
// visited once, plus one counter decrement per edge leaving the freed set.
// The traversal is iterative (explicit worklist) so version chains of depth
// 10^5+ cannot overflow the stack.
//
// Reference discipline:
//   * make_tuple(slots) creates a tuple with count 0 and increments the
//     count of every tuple its slots reference.
//   * publish_root(t) registers one root reference (count + 1). A version
//     handle in the vm/ layer is exactly such a root.
//   * collect(v) drops one reference to v's tuple and cascades frees.
//
// A Machine is confined to one thread; the vm/ layer (later PRs) shards
// machines per worker and coordinates roots across threads.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <utility>
#include <vector>

#include "mvcc/alloc/pool.h"

namespace mvcc::plm {

class Tuple;

// A tagged slot value: either an integer or a tuple reference.
class Value {
 public:
  Value() : bits_(0), kind_(Kind::kInt) {}

  static Value from_int(std::int64_t i) {
    Value v;
    v.bits_ = i;
    v.kind_ = Kind::kInt;
    return v;
  }

  static Value from_tuple(Tuple* t) {
    Value v;
    v.bits_ = reinterpret_cast<std::intptr_t>(t);
    v.kind_ = Kind::kTuple;
    return v;
  }

  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }

  std::int64_t as_int() const {
    assert(is_int());
    return bits_;
  }

  Tuple* as_tuple() const {
    assert(is_tuple());
    return reinterpret_cast<Tuple*>(static_cast<std::intptr_t>(bits_));
  }

 private:
  enum class Kind : std::uint8_t { kInt, kTuple };

  std::int64_t bits_;
  Kind kind_;
};

// An immutable heap tuple. `refs` counts incoming slot references plus
// published roots; the all_prev/all_next links thread every live tuple onto
// the owning Machine's list so teardown and leak checks are O(live).
class Tuple {
 public:
  std::size_t arity() const { return slots_.size(); }
  const Value& slot(std::size_t i) const { return slots_[i]; }
  std::uint32_t ref_count() const { return refs_; }

 private:
  friend class Machine;

  explicit Tuple(std::vector<Value> slots) : slots_(std::move(slots)) {}

  std::vector<Value> slots_;
  std::uint32_t refs_ = 0;
  Tuple* all_prev_ = nullptr;
  Tuple* all_next_ = nullptr;
};

class Machine {
 public:
  Machine() = default;
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  ~Machine() {
    // Whatever discipline the client followed, teardown reclaims the rest.
    Tuple* t = all_head_;
    while (t != nullptr) {
      Tuple* next = t->all_next_;
      alloc::destroy(t);
      t = next;
    }
  }

  // Allocates an immutable tuple over `slots`, taking one new reference to
  // every tuple a slot points at. The result itself starts unreferenced;
  // root it with publish_root or embed it in another tuple.
  Tuple* make_tuple(std::vector<Value> slots) {
    for (const Value& v : slots) {
      if (v.is_tuple()) ++v.as_tuple()->refs_;
    }
    // Placement-construct rather than alloc::create: the Tuple constructor
    // is private to this friend, and the storage comes from the pool.
    Tuple* t = ::new (alloc::allocate(sizeof(Tuple)))
        Tuple(std::move(slots));
    t->all_next_ = all_head_;
    if (all_head_ != nullptr) all_head_->all_prev_ = t;
    all_head_ = t;
    ++live_;
    ++allocated_;
    return t;
  }

  Tuple* make_tuple(std::initializer_list<Value> slots) {
    return make_tuple(std::vector<Value>(slots));
  }

  // Registers one root reference to `t` (e.g. a published version handle).
  void publish_root(Tuple* t) {
    assert(t != nullptr);
    ++t->refs_;
  }

  // Drops one reference to v's tuple (a no-op for integer values) and frees
  // every tuple that becomes unreachable. Returns the number of tuples
  // freed; total work is O(freed + 1) — Theorem 4.2's precise bound.
  std::size_t collect(Value v) {
    if (!v.is_tuple()) return 0;
    Tuple* t = v.as_tuple();
    assert(t->refs_ > 0 && "collect without a matching reference");
    if (--t->refs_ != 0) return 0;
    std::size_t freed = 0;
    worklist_.clear();
    freed_mem_.clear();
    worklist_.push_back(t);
    while (!worklist_.empty()) {
      Tuple* dead = worklist_.back();
      worklist_.pop_back();
      for (const Value& slot : dead->slots_) {
        if (!slot.is_tuple()) continue;
        Tuple* child = slot.as_tuple();
        assert(child->refs_ > 0);
        if (--child->refs_ == 0) worklist_.push_back(child);
      }
      unlink(dead);
      dead->~Tuple();
      freed_mem_.push_back(dead);
      ++freed;
    }
    // The whole exact freed set returns to the allocator in one batch —
    // collect is O(freed) in the allocator too, not just the traversal.
    alloc::deallocate_batch(freed_mem_.data(), freed_mem_.size(),
                            sizeof(Tuple));
    live_ -= freed;
    return freed;
  }

  std::size_t live_tuples() const { return live_; }
  std::size_t total_allocated() const { return allocated_; }

 private:
  void unlink(Tuple* t) {
    if (t->all_prev_ != nullptr) {
      t->all_prev_->all_next_ = t->all_next_;
    } else {
      all_head_ = t->all_next_;
    }
    if (t->all_next_ != nullptr) t->all_next_->all_prev_ = t->all_prev_;
  }

  Tuple* all_head_ = nullptr;
  std::size_t live_ = 0;
  std::size_t allocated_ = 0;
  // Reused across collect calls so steady-state collection does not
  // reallocate; both grow to the largest freed set seen.
  std::vector<Tuple*> worklist_;
  std::vector<void*> freed_mem_;
};

}  // namespace mvcc::plm
