// PSLF — the paper's Precise Solution, Lock-Free (Section 4 variant
// without helping).
//
// Acquire is the announce-and-validate retry loop: publish the version you
// read, then check it is still current; a concurrent set invalidates the
// attempt and the reader retries against the newer version. Lock-free, not
// wait-free: a writer committing continuously can starve a reader's
// acquire (the regime bench_ablation_help probes with nu=1), but some
// operation always completes. In exchange, set sheds PSWF's help pass — a
// bare publish-retire-sweep.
//
// The validated announcement gives the same protection as PSWF's helped
// one: validation observing v as current happens before the writer
// replaces v, which happens before v is marked RETIRED, which happens
// before any claim scan — so every claim scan sees the holder's
// announcement. Collection is precise: release returns exactly the
// versions it unreached (see detail/precise_core.h).
#pragma once

#include <cassert>
#include <utility>
#include <vector>

#include "mvcc/vm/detail/precise_core.h"

namespace mvcc::vm {

template <class T>
class PslfVersionManager : public detail::PreciseCore<T> {
  using Core = detail::PreciseCore<T>;
  using Rec = typename Core::Rec;

 public:
  using Core::Core;

  static constexpr const char* name() { return "PSLF"; }

  // Lock-free: retries until the announced version survives validation.
  T* acquire(int p) {
    auto& slot = this->slots_[p].a;
    assert(slot.load(std::memory_order_relaxed) == nullptr &&
           "acquire while already holding");
    Rec* v;
    do {
      v = this->current_.load(std::memory_order_seq_cst);
      slot.store(v, std::memory_order_seq_cst);
    } while (this->current_.load(std::memory_order_seq_cst) != v);
    obs::trace_instant("vm/acquire");
    return v->payload.load(std::memory_order_relaxed);
  }

  // Single writer at a time (externally serialized); no helping.
  std::vector<T*> set(int p, T* next) {
    (void)p;
    Rec* rec = this->alloc_rec(next);
    Rec* old = this->publish_and_retire(rec);
    this->retire(old);
    return this->sweep();
  }
};

}  // namespace mvcc::vm
