// The Version Maintenance (VM) problem, Section 3 of the paper.
//
// A versioned object has one current version and up to P processes that
// read it. The VM interface every algorithm in vm/ implements:
//
//   T* acquire(p)        pin and return the current version for process p.
//   set(p, next)         publish `next` as the current version (single
//                        writer at a time; concurrent set calls must be
//                        serialized externally, acquire/release are fully
//                        concurrent). Returns the payloads this call proved
//                        unreachable — the caller owns them and may free.
//   release(p)           unpin p's version; returns newly unreachable
//                        payloads, exactly like set.
//   shutdown_drain()     at quiescence (no concurrent ops, everything
//                        released): returns every payload the manager still
//                        tracks — superseded-but-unfreed versions plus the
//                        current one — leaving the manager empty.
//
// Payloads are CLIENT-OWNED: a manager never dereferences or deletes a T,
// it only hands back pointers whose versions no process can reach. The
// protocol per process is acquire -> [set]* -> release; set requires the
// caller to have acquired (its own pin is handled like any reader's).
//
// Live-version accounting: `live_versions()` counts versions that have
// been superseded by a set but whose payload has not yet been returned to
// the client; `max_live_versions()` is the high-water mark. This is the
// "number of uncollected versions" the paper bounds (Theorem 3.4) and what
// Figure 6 / Table 2 plot: RCU pins it at 1, HP at 2P, PSWF/PSLF at O(P),
// EP is unbounded under a stalled reader.
//
// This header also provides BaseVersionManager, the no-reclamation
// baseline from Table 2: set parks every superseded version on a leak
// list, so readers need no protection at all (nothing is ever freed before
// shutdown). It is the throughput upper bound the real algorithms are
// measured against.
#pragma once

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "mvcc/alloc/reclaim.h"
#include "mvcc/exec/pool.h"
#include "mvcc/obs/obs.h"

namespace mvcc::vm {

// Process-wide vm/ telemetry (obs registry handles, touched only under
// obs::enabled()):
//
//   vm/live_versions_hwm   max superseded-but-unfreed versions any single
//                          manager reached — the Theorem 3.4 bound as a
//                          number
//   vm/versions_retired    versions superseded by a set, across managers
inline obs::Gauge& vm_live_versions_hwm() {
  static obs::Gauge& g = obs::registry().gauge("vm/live_versions_hwm");
  return g;
}

inline obs::Counter& vm_versions_retired() {
  static obs::Counter& c = obs::registry().counter("vm/versions_retired");
  return c;
}

// Current superseded-but-unfreed versions, summed across every live
// manager — the instantaneous value whose maximum the hwm gauge keeps.
// Maintained unconditionally (one relaxed add per version retirement,
// nowhere near a hot path) so the sampler can plot the paper's
// uncollected-version curve over time.
inline std::atomic<std::int64_t> g_live_versions{0};

// Registers the live-version and reclaim-queue probes with the obs
// sampler. Idempotent; called by the bench glue before the sampler starts.
inline void register_vm_probes() {
  obs::Sampler::instance().register_probe("vm/live_versions", [] {
    return g_live_versions.load(std::memory_order_relaxed);
  });
  obs::Sampler::instance().register_probe("reclaim/queue_depth", [] {
    return alloc::reclaim_queue_depth().load(std::memory_order_relaxed);
  });
}

// --- Off-critical-path precise reclamation (MVCC_BG_RECLAIM) -------------
//
// The VM algorithms return EXACT freed sets; by default their client
// (txn/batching.h, invidx/) deletes the payloads inline, right on the path
// that proved them unreachable — for the flattener that means a commit
// stalls on the destructor cost of every version it retires. With
// MVCC_BG_RECLAIM=1, reclaim_payloads() publishes the whole freed set to
// the exec/ pool's background lane instead and returns immediately; a
// worker runs the deletes under a `reclaim/batch_free` trace span.
//
// Precision is untouched: the freed SET is computed exactly as in the
// inline mode (the managers' claim protocols still hand each payload back
// exactly once), only WHERE the destructor runs changes. The counterpart
// guarantee is reclaim_quiesce(): it blocks until every published batch
// has been freed, so "ftree::live_nodes() returns to baseline" holds at
// any quiescent point that drains — the client destructors (BatchingMap,
// InvertedIndex, the managers themselves) all quiesce, so deferred
// reclamation can never leak at shutdown.

namespace detail {
// -1 = uninitialized; the first query resolves the MVCC_BG_RECLAIM env
// var. set_bg_reclaim() overrides for tests, mirroring obs::set_enabled.
inline std::atomic<int>& bg_reclaim_flag() {
  static std::atomic<int> flag{-1};
  return flag;
}
}  // namespace detail

inline bool bg_reclaim_enabled() {
  int v = detail::bg_reclaim_flag().load(std::memory_order_relaxed);
  if (v < 0) [[unlikely]] {
    v = env_long("MVCC_BG_RECLAIM", 0) != 0 ? 1 : 0;
    detail::bg_reclaim_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

inline void set_bg_reclaim(bool on) {
  detail::bg_reclaim_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

// The queue-depth gauge and registry handles now live on the unified
// alloc/ reclamation seam (alloc/reclaim.h); these names are kept so vm/
// clients and tests read them where the lane was introduced.
using alloc::ReclaimStats;
using alloc::reclaim_queue_depth;

// Frees a VM operation's returned payload set through the unified
// alloc::reclaim_batch seam: inline when deferred reclaim is off (or the
// set is empty), else as one batch on the exec/ pool's background lane.
// Takes the vector by value so call sites pass the VM return directly:
// `vm::reclaim_payloads(vm.release(p))`. The dispose policy says how each
// payload dies — operator delete by default (client-owned payloads the VM
// contract promises never to touch), alloc::PoolDispose for payloads the
// client created through the slab pool.
template <class T, class Dispose = alloc::DeleteDispose>
void reclaim_payloads(std::vector<T*> dead, Dispose dispose = {}) {
  alloc::reclaim_batch(std::move(dead),
                       bg_reclaim_enabled() ? alloc::ReclaimLane::kBackground
                                            : alloc::ReclaimLane::kInline,
                       dispose);
}

// Blocks until every payload ever passed to reclaim_payloads has been
// freed (helping drain from the calling thread). Trivially quiescent when
// the pool was never created or deferred reclaim never engaged.
inline void reclaim_quiesce() { alloc::reclaim_quiesce(); }

// --- Cross-manager version vectors ---------------------------------------
//
// A sharded client owns N independent managers — one per shard, each under
// its own single-writer contract — and needs a snapshot that is mutually
// consistent ACROSS them: a version vector no cross-shard commit is torn
// through. A single manager's acquire cannot provide that (each pin is
// individually consistent but the vector is assembled over a window other
// shards keep committing through), so the client publishes a validation
// token — typically a seqlock epoch its cross-shard commits straddle — and
// acquire_version_vector runs the validate-retry pass:
//
//   1. read the token (the callback must not return while a cross-shard
//      commit is in flight, e.g. spin while the epoch is odd),
//   2. pin every shard through its manager's own acquire path,
//   3. re-read the token; a change means a cross-shard commit overlapped
//      the pins — drop them (Snap destructors release) and retry.
//
// The pins themselves use whichever vm/ algorithm the shards run (PSWF's
// bounded-delay acquire keeps each attempt wait-free), so the loop is
// lock-free overall: it only retries while writers make commit progress.
// `max_retries` bounds the pass for callers that want to fall back to
// serializing behind the committers (txn/sharded.h takes its multi-commit
// mutex then); on exhaustion the vector returned is empty. `retries`, when
// non-null, accumulates the failed passes for the caller's telemetry
// (sharded/snapshot_retries).
template <class Snap, class TokenFn, class PinFn>
std::vector<Snap> acquire_version_vector(std::size_t shards, TokenFn&& token,
                                         PinFn&& pin,
                                         std::uint64_t* retries = nullptr,
                                         std::uint64_t max_retries = ~0ULL) {
  std::vector<Snap> vec;
  for (std::uint64_t attempt = 0;; ++attempt) {
    const std::uint64_t t0 = token();
    vec.clear();
    vec.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) vec.push_back(pin(s));
    if (token() == t0) return vec;
    if (retries != nullptr) ++*retries;
    if (attempt >= max_retries) {
      vec.clear();
      return vec;
    }
  }
}

// The compile-time shape of a VM algorithm; benches and the workload
// harness template over any VM satisfying this.
template <class VM, class T>
concept VersionManagerFor =
    std::constructible_from<VM, int, T*> &&
    requires(VM vm, const VM cvm, int p, T* v) {
      { vm.acquire(p) } -> std::same_as<T*>;
      { vm.set(p, v) } -> std::same_as<std::vector<T*>>;
      { vm.release(p) } -> std::same_as<std::vector<T*>>;
      { vm.shutdown_drain() } -> std::same_as<std::vector<T*>>;
      { cvm.live_versions() } -> std::same_as<std::int64_t>;
      { cvm.max_live_versions() } -> std::same_as<std::int64_t>;
      { VM::name() } -> std::convertible_to<const char*>;
    };

// Shared live-version accounting. note_retired() when a set supersedes a
// version, note_freed() when its payload is handed back to the client; the
// counter and high-water mark are what Figure 6 reports.
class VmStats {
 public:
  std::int64_t live_versions() const {
    return live_.load(std::memory_order_relaxed);
  }

  std::int64_t max_live_versions() const {
    return max_.load(std::memory_order_relaxed);
  }

 protected:
  void note_retired() {
    const std::int64_t now = live_.fetch_add(1, std::memory_order_relaxed) + 1;
    g_live_versions.fetch_add(1, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < now && !max_.compare_exchange_weak(
                             prev, now, std::memory_order_relaxed)) {
    }
    if (obs::enabled()) {
      vm_live_versions_hwm().update_max(now);
      vm_versions_retired().add();
    }
    obs::trace_instant("vm/retire");
  }

  void note_freed(std::int64_t n) {
    live_.fetch_sub(n, std::memory_order_relaxed);
    g_live_versions.fetch_sub(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::int64_t> max_{0};
};

// The no-reclamation baseline: versions are never freed while running, so
// acquire is a plain load and release is a no-op. Everything superseded
// accumulates on a writer-owned leak list until shutdown_drain. Table 2's
// "Base" column.
template <class T>
class BaseVersionManager : public VmStats {
 public:
  BaseVersionManager(int nprocs, T* initial) : current_(initial) {
    assert(nprocs >= 1);
    (void)nprocs;
  }

  // A manager's death is a quiescent point: drain the background reclaim
  // lane so payloads this manager's clients deferred are freed before the
  // client finishes tearing down around it.
  ~BaseVersionManager() { reclaim_quiesce(); }

  static constexpr const char* name() { return "Base"; }

  T* acquire(int) { return current_.load(std::memory_order_acquire); }

  std::vector<T*> release(int) { return {}; }

  std::vector<T*> set(int, T* next) {
    T* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_release);
    leaked_.push_back(old);
    note_retired();
    return {};
  }

  std::vector<T*> shutdown_drain() {
    std::vector<T*> out = std::move(leaked_);
    leaked_.clear();
    note_freed(static_cast<std::int64_t>(out.size()));
    if (T* cur = current_.exchange(nullptr, std::memory_order_relaxed)) {
      out.push_back(cur);
    }
    return out;
  }

 private:
  std::atomic<T*> current_;
  std::vector<T*> leaked_;  // writer-owned; grows without bound by design
};

}  // namespace mvcc::vm
