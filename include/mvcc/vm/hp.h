// HP — hazard-pointer reclamation baseline (Table 2 / Figure 6's "HP").
//
// Each process protects the version it reads with one hazard pointer,
// installed by the classic announce-and-validate loop (same read-side cost
// shape as pslf.h, and likewise only lock-free). Reclamation is amortized
// on the writer: superseded versions accumulate on a retired list, and
// once it reaches 2P the writer scans all hazard pointers and frees every
// unprotected version. At most P retired versions can be protected (one
// hazard each), so the number of uncollected versions is bounded by 2P —
// the flat "2P" line of Figure 6, immune to stalled readers (a stalled
// reader pins exactly the one version its hazard names) but never precise:
// a version's payload comes back only at some later scan, not when its
// last reader leaves.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "mvcc/vm/base.h"

namespace mvcc::vm {

template <class T>
class HpVersionManager : public VmStats {
 public:
  HpVersionManager(int nprocs, T* initial)
      : nprocs_(nprocs), hp_(nprocs), current_(initial) {
    assert(nprocs >= 1);
  }

  HpVersionManager(const HpVersionManager&) = delete;
  HpVersionManager& operator=(const HpVersionManager&) = delete;

  static constexpr const char* name() { return "HP"; }

  T* acquire(int p) {
    T* v;
    do {
      v = current_.load(std::memory_order_seq_cst);
      hp_[p].h.store(v, std::memory_order_seq_cst);
    } while (current_.load(std::memory_order_seq_cst) != v);
    return v;
  }

  std::vector<T*> release(int p) {
    hp_[p].h.store(nullptr, std::memory_order_release);
    return {};
  }

  // Single writer at a time (externally serialized).
  std::vector<T*> set(int p, T* next) {
    (void)p;
    T* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_seq_cst);
    retired_.push_back(old);
    note_retired();
    if (retired_.size() >= 2 * static_cast<std::size_t>(nprocs_)) {
      return scan();
    }
    return {};
  }

  std::vector<T*> shutdown_drain() {
    std::vector<T*> out = std::move(retired_);
    retired_.clear();
    note_freed(static_cast<std::int64_t>(out.size()));
    if (T* cur = current_.exchange(nullptr, std::memory_order_relaxed)) {
      out.push_back(cur);
    }
    return out;
  }

 private:
  struct alignas(64) Hazard {
    std::atomic<T*> h{nullptr};
  };

  // O(R * P) with R <= 2P and P the process count; amortized over the 2P
  // retirements between scans.
  std::vector<T*> scan() {
    protected_.clear();
    for (int q = 0; q < nprocs_; ++q) {
      if (T* h = hp_[q].h.load(std::memory_order_seq_cst)) {
        protected_.push_back(h);
      }
    }
    std::vector<T*> freed;
    std::size_t out = 0;
    for (T* v : retired_) {
      bool held = false;
      for (T* h : protected_) held = held || (h == v);
      if (held) {
        retired_[out++] = v;
      } else {
        freed.push_back(v);
      }
    }
    retired_.resize(out);
    note_freed(static_cast<std::int64_t>(freed.size()));
    return freed;
  }

  const int nprocs_;
  std::vector<Hazard> hp_;
  std::atomic<T*> current_;
  std::vector<T*> retired_;    // writer-owned
  std::vector<T*> protected_;  // writer-owned scratch, reused across scans
};

}  // namespace mvcc::vm
