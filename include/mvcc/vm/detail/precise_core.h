// Shared machinery of the paper's precise VM solutions (PSWF and PSLF).
//
// Both algorithms protect readers with a per-process announcement array
// A[0..P): a process's announced version cannot be collected. They differ
// only in how acquire installs the announcement (pswf.h: one CAS plus
// writer helping, wait-free; pslf.h: announce-and-validate retry,
// lock-free). Everything else — version records, retirement, the precise
// freed-set computation on release, the writer's sweep, live-version
// accounting, shutdown — lives here.
//
// Version records are pooled and recycled, never deleted while the manager
// lives, so a reader holding a stale record pointer can always safely load
// its state word. Each record packs a reuse sequence number with a state
//
//   word = (seq << 2) | state,  state in {CURRENT, RETIRED, FREE}
//
// and every decision to free compares the full word, so a record recycled
// under a slow reader (seq bumped) can never be confused with the version
// that reader once held.
//
// Precise collection (the property EP/HP/IBR/RCU lack): when the last
// reference to a superseded version disappears, the operation that removed
// it returns that version's payload.
//   * release(p) un-announces, and if its version is retired and no other
//     process announces it, claims it with a CAS on the state word and
//     returns its payload — the freed set is exact, not amortized.
//   * set retires the replaced version and sweeps the retired list: any
//     retired version no longer announced is claimed and returned.
// The claim CAS makes "exactly one collector" a machine-checked fact: a
// release racing the writer's sweep (or another release of the same
// version) frees each version exactly once. That exactly-once claim is
// also why deferred reclamation (vm/base.h MVCC_BG_RECLAIM) cannot
// double-free: the client may delete a returned payload later and on
// another thread, but each payload is RETURNED once, by one operation.
//
// Why the scan in release is safe (the argument behind Theorem 3.4's
// precision): a version only becomes claimable after the writer marked it
// RETIRED, which happens after the writer replaced it as current; any
// process validly holding it announced it before that replacement (PSLF
// validates against the current pointer; PSWF announcements are installed
// by the reader before the writer's help pass visits its slot, or by the
// writer itself). Under the seq_cst total order, every claim scan
// therefore observes every valid holder's announcement. A reader stalled
// mid-acquire can leave a phantom announcement of a dead version; that
// only delays the claim to the writer's next sweep — never unsafety, and
// the number of uncollected versions stays O(P).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mvcc/vm/base.h"

namespace mvcc::vm::detail {

// Freed-set telemetry of the precise algorithms (obs registry handles,
// touched only under obs::enabled()):
//
//   vm/release_frees     releases whose exact freed set was non-empty
//                        (a release frees at most its own version)
//   vm/freed_per_sweep   distribution of versions each writer sweep
//                        reclaimed (zeros included: the common case)
inline obs::Counter& vm_release_frees() {
  static obs::Counter& c = obs::registry().counter("vm/release_frees");
  return c;
}

inline obs::LatencyHistogram& vm_freed_per_sweep() {
  static obs::LatencyHistogram& h =
      obs::registry().histogram("vm/freed_per_sweep");
  return h;
}

template <class T>
class PreciseCore : public VmStats {
 public:
  PreciseCore(int nprocs, T* initial) : nprocs_(nprocs), slots_(nprocs) {
    assert(nprocs >= 1);
    current_.store(alloc_rec(initial), std::memory_order_release);
  }

  PreciseCore(const PreciseCore&) = delete;
  PreciseCore& operator=(const PreciseCore&) = delete;

  // A manager's death is a quiescent point: drain the background reclaim
  // lane so payloads its clients deferred are freed before teardown
  // completes (live_nodes-to-baseline holds right after the manager dies).
  ~PreciseCore() { reclaim_quiesce(); }

  // Un-announces process p's version and, when this release removed the
  // last reference to a retired version, claims it and returns its payload
  // — the exact freed set of this operation.
  std::vector<T*> release(int p) {
    Rec* r = slots_[p].a.load(std::memory_order_acquire);
    assert(r != nullptr && "release without a matching acquire");
    // While we are announced, r cannot be claimed or recycled, so this
    // word/payload pair is a consistent snapshot of the version we hold.
    const std::uint64_t w0 = r->word.load(std::memory_order_acquire);
    T* payload = r->payload.load(std::memory_order_relaxed);
    slots_[p].a.store(nullptr, std::memory_order_seq_cst);
    // Only a version retired under our sequence number is ours to free; a
    // CURRENT w0 may have been retired in the window since, so re-read.
    const std::uint64_t retired_word = pack(seq_of(w0), kRetired);
    if (r->word.load(std::memory_order_seq_cst) != retired_word) return {};
    for (int q = 0; q < nprocs_; ++q) {
      if (slots_[q].a.load(std::memory_order_seq_cst) == r) {
        return {};  // still announced; the holder or the sweep collects it
      }
    }
    std::uint64_t expected = retired_word;
    if (r->word.compare_exchange_strong(expected, pack(seq_of(w0), kFree),
                                        std::memory_order_seq_cst)) {
      note_freed(1);
      if (obs::enabled()) vm_release_frees().add();
      obs::trace_instant("vm/release_free");
      return {payload};
    }
    return {};  // lost the claim race: someone else freed it
  }

  // Quiescent teardown: returns every payload still tracked (retired but
  // unclaimed versions plus the current one) and empties the manager.
  std::vector<T*> shutdown_drain() {
    std::vector<T*> out;
    for (Rec* r : retired_) {
      const std::uint64_t w = r->word.load(std::memory_order_relaxed);
      if (state_of(w) == kRetired) {
        out.push_back(r->payload.load(std::memory_order_relaxed));
        r->word.store(pack(seq_of(w), kFree), std::memory_order_relaxed);
        note_freed(1);
      }
      freelist_.push_back(r);
    }
    retired_.clear();
    if (Rec* cur = current_.exchange(nullptr, std::memory_order_relaxed)) {
      const std::uint64_t w = cur->word.load(std::memory_order_relaxed);
      out.push_back(cur->payload.load(std::memory_order_relaxed));
      cur->word.store(pack(seq_of(w), kFree), std::memory_order_relaxed);
      freelist_.push_back(cur);
    }
    return out;
  }

 protected:
  static constexpr std::uint64_t kCurrent = 0;
  static constexpr std::uint64_t kRetired = 1;
  static constexpr std::uint64_t kFree = 2;

  struct Rec {
    std::atomic<std::uint64_t> word{kFree};
    std::atomic<T*> payload{nullptr};
  };

  struct alignas(64) Slot {
    std::atomic<Rec*> a{nullptr};
  };

  static constexpr std::uint64_t pack(std::uint64_t seq, std::uint64_t st) {
    return (seq << 2) | st;
  }
  static constexpr std::uint64_t seq_of(std::uint64_t w) { return w >> 2; }
  static constexpr std::uint64_t state_of(std::uint64_t w) { return w & 3; }

  // Writer-only: takes a record from the pool (bumping its reuse sequence
  // number) and makes it the CURRENT holder of `payload`.
  Rec* alloc_rec(T* payload) {
    Rec* r;
    if (!freelist_.empty()) {
      r = freelist_.back();
      freelist_.pop_back();
    } else {
      pool_.push_back(std::make_unique<Rec>());
      r = pool_.back().get();
    }
    const std::uint64_t w = r->word.load(std::memory_order_relaxed);
    assert(state_of(w) == kFree);
    r->payload.store(payload, std::memory_order_relaxed);
    r->word.store(pack(seq_of(w) + 1, kCurrent), std::memory_order_seq_cst);
    return r;
  }

  // Writer-only: publishes `rec` as current and retires the version it
  // replaces. The RETIRED store is what opens the old version to claiming,
  // so it comes after the current-pointer swap (release's safety argument
  // leans on this order).
  Rec* publish_and_retire(Rec* rec) {
    Rec* old = current_.load(std::memory_order_relaxed);
    current_.store(rec, std::memory_order_seq_cst);
    return old;
  }

  void retire(Rec* old) {
    const std::uint64_t w = old->word.load(std::memory_order_relaxed);
    assert(state_of(w) == kCurrent);
    old->word.store(pack(seq_of(w), kRetired), std::memory_order_seq_cst);
    note_retired();
    retired_.push_back(old);
  }

  // Writer-only: claims every retired version no longer announced,
  // recycles records already claimed by releases, and returns the freed
  // payloads. After a sweep every surviving retired version is announced
  // by some process, so at most P survive — the O(P) uncollected bound.
  std::vector<T*> sweep() {
    obs::TraceSpan span("vm/sweep");
    std::vector<T*> freed;
    std::size_t out = 0;
    for (Rec* r : retired_) {
      std::uint64_t w = r->word.load(std::memory_order_acquire);
      if (state_of(w) == kFree) {  // claimed by a release since last sweep
        freelist_.push_back(r);
        continue;
      }
      if (!announced(r)) {
        T* payload = r->payload.load(std::memory_order_relaxed);
        if (r->word.compare_exchange_strong(w, pack(seq_of(w), kFree),
                                            std::memory_order_seq_cst)) {
          freed.push_back(payload);
          note_freed(1);
          freelist_.push_back(r);
          continue;
        }
        // A release claimed it between our scan and CAS; it is FREE now.
        freelist_.push_back(r);
        continue;
      }
      retired_[out++] = r;
    }
    retired_.resize(out);
    if (obs::enabled()) {
      vm_freed_per_sweep().record(static_cast<std::uint64_t>(freed.size()));
    }
    span.set_arg(freed.size());
    return freed;
  }

  bool announced(const Rec* r) const {
    for (int q = 0; q < nprocs_; ++q) {
      if (slots_[q].a.load(std::memory_order_seq_cst) == r) return true;
    }
    return false;
  }

  const int nprocs_;
  std::atomic<Rec*> current_{nullptr};
  std::vector<Slot> slots_;

  // Writer-owned (mutated only under the external set-serialization, or at
  // quiescence): every record ever allocated, the recyclable ones, and the
  // retired-but-uncollected ones.
  std::vector<std::unique_ptr<Rec>> pool_;
  std::vector<Rec*> freelist_;
  std::vector<Rec*> retired_;
};

}  // namespace mvcc::vm::detail
