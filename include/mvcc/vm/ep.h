// EP — epoch-based reclamation baseline (Table 2 / Figure 6's "EP").
//
// The classic scheme the paper compares against: a global epoch advances
// on every set; a reader reserves the epoch it entered at, reads the
// current version, and clears the reservation on release. A superseded
// version is tagged with the epoch at which it was replaced and may be
// freed once every active reservation is strictly newer.
//
// Reads are the cheapest of any scheme here — one load and one store, no
// validation loop — which is EP's practical appeal. The cost is
// imprecision: a single stalled reader pins its entry epoch forever, and
// since every later version retires at a later epoch, NOTHING retired
// after the stall can be freed. That is the unbounded blow-up the paper's
// Figure 6 shows at small update granularity, and what the precise
// algorithms (pswf.h / pslf.h) eliminate.
//
// Reclamation runs on the writer: set tags the replaced version, advances
// the epoch, and frees the limbo prefix older than every reservation.
// release never frees (returns an empty set).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "mvcc/vm/base.h"

namespace mvcc::vm {

template <class T>
class EpVersionManager : public VmStats {
 public:
  EpVersionManager(int nprocs, T* initial)
      : nprocs_(nprocs), res_(nprocs), current_(initial) {
    assert(nprocs >= 1);
  }

  EpVersionManager(const EpVersionManager&) = delete;
  EpVersionManager& operator=(const EpVersionManager&) = delete;

  static constexpr const char* name() { return "EP"; }

  T* acquire(int p) {
    res_[p].e.store(epoch_.load(std::memory_order_seq_cst),
                    std::memory_order_seq_cst);
    return current_.load(std::memory_order_seq_cst);
  }

  std::vector<T*> release(int p) {
    res_[p].e.store(kQuiescent, std::memory_order_release);
    return {};
  }

  // Single writer at a time (externally serialized).
  std::vector<T*> set(int p, T* next) {
    (void)p;
    T* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_seq_cst);
    // fetch_add returns the epoch in force when `old` was replaced; every
    // holder's reservation is <= it, so the strict < below protects them.
    const std::uint64_t retired_at =
        epoch_.fetch_add(1, std::memory_order_seq_cst);
    limbo_.push_back({old, retired_at});
    note_retired();
    return reclaim();
  }

  std::vector<T*> shutdown_drain() {
    std::vector<T*> out;
    for (const Limbo& l : limbo_) out.push_back(l.payload);
    note_freed(static_cast<std::int64_t>(limbo_.size()));
    limbo_.clear();
    if (T* cur = current_.exchange(nullptr, std::memory_order_relaxed)) {
      out.push_back(cur);
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kQuiescent =
      std::numeric_limits<std::uint64_t>::max();

  struct alignas(64) Reservation {
    std::atomic<std::uint64_t> e{kQuiescent};
  };

  struct Limbo {
    T* payload;
    std::uint64_t retired_at;
  };

  // Frees the limbo prefix strictly older than every active reservation.
  // Limbo is retire-epoch ordered, so this pops from the front and the
  // work is O(P + freed).
  std::vector<T*> reclaim() {
    std::uint64_t min_res = kQuiescent;
    for (int q = 0; q < nprocs_; ++q) {
      min_res = std::min(min_res, res_[q].e.load(std::memory_order_seq_cst));
    }
    std::vector<T*> freed;
    while (!limbo_.empty() && limbo_.front().retired_at < min_res) {
      freed.push_back(limbo_.front().payload);
      limbo_.pop_front();
    }
    note_freed(static_cast<std::int64_t>(freed.size()));
    return freed;
  }

  const int nprocs_;
  std::vector<Reservation> res_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<T*> current_;
  std::deque<Limbo> limbo_;  // writer-owned, retire-epoch ordered
};

}  // namespace mvcc::vm
