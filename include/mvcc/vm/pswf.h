// PSWF — the paper's Precise Solution, Wait-Free (Section 3, Theorem 3.4).
//
// Acquire is wait-free with BOUNDED DELAY: a reader announces an
// "acquiring" sentinel, reads the current version, and tries ONCE to CAS
// it into its own slot. It never loops — if the CAS fails, the writer's
// help pass already installed the (newer) current version into the slot on
// the reader's behalf, and that is the version acquired. Symmetrically,
// set's help pass bounds how stale any in-flight acquire can be: after the
// writer publishes a new version it CASes it into every slot still showing
// the sentinel, so no reader can complete an acquire with a version older
// than the previous current. This is the helping that bounds both the
// reader's delay (O(1) steps, always) and the number of uncollected
// versions (O(P): every retired version surviving a sweep is announced by
// some process).
//
// The sentinel handshake makes the single attempt safe: if the reader's
// CAS succeeds with version v, it beat the writer's help pass to the slot,
// so the writer's retire-and-sweep (which follows the help pass) observes
// the announcement; if the writer wins, the reader holds the version the
// writer just published, which the writer cannot retire before its next
// set. Either way the announced version is protected before anyone may
// claim it.
//
// Collection is precise: release returns exactly the versions this
// release unreached (see detail/precise_core.h).
#pragma once

#include <cassert>
#include <utility>
#include <vector>

#include "mvcc/vm/detail/precise_core.h"

namespace mvcc::vm {

template <class T>
class PswfVersionManager : public detail::PreciseCore<T> {
  using Core = detail::PreciseCore<T>;
  using Rec = typename Core::Rec;

 public:
  using Core::Core;

  static constexpr const char* name() { return "PSWF"; }

  // Wait-free: one sentinel store, one read, one CAS — no retry.
  T* acquire(int p) {
    auto& slot = this->slots_[p].a;
    assert(slot.load(std::memory_order_relaxed) == nullptr &&
           "acquire while already holding");
    slot.store(acquiring(), std::memory_order_seq_cst);
    Rec* v = this->current_.load(std::memory_order_seq_cst);
    Rec* expected = acquiring();
    if (!slot.compare_exchange_strong(expected, v,
                                      std::memory_order_seq_cst)) {
      v = expected;  // the writer helped us to the version it published
    }
    obs::trace_instant("vm/acquire");
    return v->payload.load(std::memory_order_relaxed);
  }

  // Single writer at a time (externally serialized). Publishes `next`,
  // helps every in-flight acquire, retires the replaced version, and
  // returns the payloads the sweep proved unreachable.
  std::vector<T*> set(int p, T* next) {
    (void)p;
    Rec* rec = this->alloc_rec(next);
    Rec* old = this->publish_and_retire(rec);
    // Help pass: complete every acquire still showing the sentinel with
    // the version just published. Must precede retire(old): a reader whose
    // own CAS beat us here has its announcement of `old` visible to the
    // sweep below.
    for (int q = 0; q < this->nprocs_; ++q) {
      Rec* expected = acquiring();
      this->slots_[q].a.compare_exchange_strong(expected, rec,
                                                std::memory_order_seq_cst);
    }
    this->retire(old);
    return this->sweep();
  }

 private:
  // The per-manager "acquire in progress" sentinel; never dereferenced.
  Rec* acquiring() { return &acquiring_rec_; }

  Rec acquiring_rec_;
};

}  // namespace mvcc::vm
