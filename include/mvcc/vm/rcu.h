// RCU — read-copy-update baseline (Table 2 / Figure 6's "RCU").
//
// Readers mark themselves active with the generation they entered at;
// reads are wait-free and as cheap as EP's. The writer pays for it all:
// after publishing a new version, set advances the generation and BLOCKS
// until every other process is either idle or has re-entered at the new
// generation, then frees the replaced version immediately. That pins the
// number of uncollected versions at 1 (the paper's Figure 6 line) but
// couples update latency to the slowest reader: a stalled reader stalls
// the writer itself, the opposite trade from EP (where the writer sails on
// and memory blows up).
//
// The one wrinkle is the writer's own read-side section: the VM protocol
// has the writer acquire before set, so the version it replaces may be
// pinned by the writer itself. In that case the grace period cannot free
// it (that would deadlock set); it is deferred to the writer's own release
// and returned there.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/vm/base.h"

namespace mvcc::vm {

template <class T>
class RcuVersionManager : public VmStats {
 public:
  RcuVersionManager(int nprocs, T* initial)
      : nprocs_(nprocs), rs_(nprocs), pending_(nprocs), current_(initial) {
    assert(nprocs >= 1);
  }

  RcuVersionManager(const RcuVersionManager&) = delete;
  RcuVersionManager& operator=(const RcuVersionManager&) = delete;

  static constexpr const char* name() { return "RCU"; }

  T* acquire(int p) {
    const std::uint64_t g = gen_.load(std::memory_order_seq_cst);
    rs_[p].s.store((g << 1) | 1, std::memory_order_seq_cst);
    return current_.load(std::memory_order_seq_cst);
  }

  std::vector<T*> release(int p) {
    rs_[p].s.store(0, std::memory_order_seq_cst);
    if (pending_[p].v.empty()) return {};
    // Versions this process's own sets replaced while it was reading.
    std::vector<T*> freed = std::move(pending_[p].v);
    pending_[p].v.clear();
    note_freed(static_cast<std::int64_t>(freed.size()));
    return freed;
  }

  // Single writer at a time (externally serialized). Blocks for a grace
  // period: every other process must be idle or past the new generation.
  std::vector<T*> set(int p, T* next) {
    T* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_seq_cst);
    const std::uint64_t g = gen_.fetch_add(1, std::memory_order_seq_cst) + 1;
    note_retired();
    for (int q = 0; q < nprocs_; ++q) {
      if (q == p) continue;  // never wait on our own read-side section
      while (true) {
        const std::uint64_t s = rs_[q].s.load(std::memory_order_seq_cst);
        if ((s & 1) == 0 || (s >> 1) >= g) break;
        std::this_thread::yield();
      }
    }
    // Only the caller can still hold `old` now.
    if ((rs_[p].s.load(std::memory_order_relaxed) & 1) != 0) {
      pending_[p].v.push_back(old);
      return {};
    }
    note_freed(1);
    return {old};
  }

  std::vector<T*> shutdown_drain() {
    std::vector<T*> out;
    for (int q = 0; q < nprocs_; ++q) {
      for (T* v : pending_[q].v) out.push_back(v);
      note_freed(static_cast<std::int64_t>(pending_[q].v.size()));
      pending_[q].v.clear();
    }
    if (T* cur = current_.exchange(nullptr, std::memory_order_relaxed)) {
      out.push_back(cur);
    }
    return out;
  }

 private:
  struct alignas(64) ReaderState {
    // 0 = idle; otherwise (generation << 1) | 1.
    std::atomic<std::uint64_t> s{0};
  };

  struct alignas(64) Pending {
    std::vector<T*> v;  // touched only by its own process
  };

  const int nprocs_;
  std::vector<ReaderState> rs_;
  std::vector<Pending> pending_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<T*> current_;
};

}  // namespace mvcc::vm
