// IBR — interval-based reclamation (our extension beyond the paper;
// Section 6 cites interval-based schemes as a further VM solution, and
// bench_fig6 plots it as an extra column).
//
// A hybrid of EP's cheap reads and HP's stall-immunity: a global era
// advances on every set; each version records its birth era and, when
// superseded, its retire era, spanning the interval in which it was ever
// current. A reader reserves the interval [entry era, latest era observed
// while reading] — extending the upper bound until the era is stable
// around its read of the current pointer. A retired version may be freed
// once its lifetime interval intersects no reservation.
//
// Unlike EP, a stalled reader blocks only versions whose lifetimes overlap
// its (frozen) reservation — versions born after it are reclaimed freely,
// so there is no stalled-reader explosion. Unlike PSWF/PSLF, collection is
// amortized (HP-style: scan when 2P retirees accumulate), not precise.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "mvcc/vm/base.h"

namespace mvcc::vm {

template <class T>
class IbrVersionManager : public VmStats {
 public:
  IbrVersionManager(int nprocs, T* initial)
      : nprocs_(nprocs), iv_(nprocs), current_(initial) {
    assert(nprocs >= 1);
    birth_of_current_ = era_.load(std::memory_order_relaxed);
  }

  IbrVersionManager(const IbrVersionManager&) = delete;
  IbrVersionManager& operator=(const IbrVersionManager&) = delete;

  static constexpr const char* name() { return "IBR"; }

  T* acquire(int p) {
    const std::uint64_t e = era_.load(std::memory_order_seq_cst);
    // hi before lo: a reservation only reads as active (lo != kIdle) once
    // its upper bound is already published.
    iv_[p].hi.store(e, std::memory_order_seq_cst);
    iv_[p].lo.store(e, std::memory_order_seq_cst);
    T* v;
    std::uint64_t hi = e;
    while (true) {
      v = current_.load(std::memory_order_seq_cst);
      const std::uint64_t now = era_.load(std::memory_order_seq_cst);
      if (now == hi) break;  // era stable around the read: hi covers v
      hi = now;
      iv_[p].hi.store(hi, std::memory_order_seq_cst);
    }
    return v;
  }

  std::vector<T*> release(int p) {
    iv_[p].lo.store(kIdle, std::memory_order_release);
    return {};
  }

  // Single writer at a time (externally serialized).
  std::vector<T*> set(int p, T* next) {
    (void)p;
    T* old = current_.load(std::memory_order_relaxed);
    current_.store(next, std::memory_order_seq_cst);
    const std::uint64_t retire_era =
        era_.fetch_add(1, std::memory_order_seq_cst);
    retired_.push_back({old, birth_of_current_, retire_era});
    // `next` became current while the era was still retire_era (the store
    // above precedes the increment), so that is its birth: a reader that
    // reserved [retire_era, retire_era] in the window may hold it.
    birth_of_current_ = retire_era;
    note_retired();
    if (retired_.size() >= 2 * static_cast<std::size_t>(nprocs_)) {
      return scan();
    }
    return {};
  }

  std::vector<T*> shutdown_drain() {
    std::vector<T*> out;
    for (const Retired& r : retired_) out.push_back(r.payload);
    note_freed(static_cast<std::int64_t>(retired_.size()));
    retired_.clear();
    if (T* cur = current_.exchange(nullptr, std::memory_order_relaxed)) {
      out.push_back(cur);
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kIdle =
      std::numeric_limits<std::uint64_t>::max();

  struct alignas(64) Interval {
    std::atomic<std::uint64_t> lo{kIdle};
    std::atomic<std::uint64_t> hi{0};
  };

  struct Retired {
    T* payload;
    std::uint64_t birth;
    std::uint64_t retire;
  };

  bool conflicts(const Retired& r) const {
    for (int q = 0; q < nprocs_; ++q) {
      const std::uint64_t lo = iv_[q].lo.load(std::memory_order_seq_cst);
      if (lo == kIdle) continue;
      const std::uint64_t hi = iv_[q].hi.load(std::memory_order_seq_cst);
      if (lo <= r.retire && r.birth <= hi) return true;
    }
    return false;
  }

  std::vector<T*> scan() {
    std::vector<T*> freed;
    std::size_t out = 0;
    for (const Retired& r : retired_) {
      if (conflicts(r)) {
        retired_[out++] = r;
      } else {
        freed.push_back(r.payload);
      }
    }
    retired_.resize(out);
    note_freed(static_cast<std::int64_t>(freed.size()));
    return freed;
  }

  const int nprocs_;
  std::vector<Interval> iv_;
  std::atomic<std::uint64_t> era_{0};
  std::atomic<T*> current_;
  std::uint64_t birth_of_current_;  // writer-owned
  std::vector<Retired> retired_;    // writer-owned
};

}  // namespace mvcc::vm
