// Batched multi-writer front-end over the functional tree — the paper's
// Section 5 / Appendix F architecture and the write path behind Figure 7's
// "ours" columns.
//
// Concurrent producers never touch the tree. Each producer p owns a
// single-producer/single-consumer ring buffer it fills with BatchOps; one
// FLATTENER thread drains every ring round-robin into a batch vector,
// deduplicates it with ftree::prepare_batch (later submissions win, and
// per-producer submission order is preserved by the drain), applies it in
// one bulk multi_insert, and publishes the resulting version through a
// Version Maintenance algorithm from vm/. Readers acquire a snapshot
// through the same VM, so reads are wait-free against the writer and see
// a single consistent version.
//
// Ownership / serialization contract:
//   * submit/upsert_sync for a given producer index p must come from one
//     thread at a time (the rings are SPSC); distinct producers are fully
//     concurrent.
//   * get/read_txn pin VM slot p; a slot must not be acquired from two
//     threads at once, but the same thread may freely interleave its
//     submits and reads on its own index.
//   * vm.set is called only by the flattener, satisfying the external
//     single-writer serialization the VM contract (vm/base.h) requires.
//   * Version payloads (Map objects) are owned here and created through
//     the alloc/ pool: every pointer a VM operation proves unreachable
//     goes through vm::reclaim_payloads with alloc::PoolDispose —
//     returned to the pool on the spot by default, or on the exec/ pool's
//     background lane under MVCC_BG_RECLAIM=1 so a commit never stalls on
//     the destructor cost of a large retirement. The destructor quiesces
//     that lane and drains the manager, so ftree::live_nodes() returns to
//     its baseline once the map and its snapshots are gone, in either mode.
//
// The batch bound is the Appendix F knob: `max_batch` caps the ops folded
// into one published version, trading throughput (bigger batches amortize
// the sort + bulk-union) against submit-to-commit latency. So that the
// trade is governed by the knob and not by queueing depth, admission
// control bounds each producer's submitted-but-uncommitted ops at
// ~max_batch (capped by ring capacity): a submitted op always lands in the
// batch being filled or the one after it, so its commit is at most about
// two batch publications away.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/alloc/pool.h"
#include "mvcc/common/timing.h"
#include "mvcc/ftree/fmap.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/obs/obs.h"
#include "mvcc/vm/base.h"

namespace mvcc::txn {

// Registry handles for the batching front-end, looked up once and shared
// by every BatchingMap instantiation (the telemetry is a process-wide
// aggregate, like ftree::live_nodes). Touched only under obs::enabled().
//
//   txn/batch_size            ops folded into each published version
//   txn/commit_latency_ns     upsert_sync submit-to-visible latency
//   txn/flattener_stalls      partial batches committed because a sync
//                             waiter was parked on rings that ran dry
//   txn/admission_rejects     submit calls that blocked on the in-flight
//                             bound before their op was admitted
struct BatchingStats {
  obs::LatencyHistogram& batch_size;
  obs::LatencyHistogram& commit_latency_ns;
  obs::Counter& flattener_stalls;
  obs::Counter& admission_rejects;

  static BatchingStats& get() {
    static BatchingStats s{obs::registry().histogram("txn/batch_size"),
                           obs::registry().histogram("txn/commit_latency_ns"),
                           obs::registry().counter("txn/flattener_stalls"),
                           obs::registry().counter("txn/admission_rejects")};
    return s;
  }
};

// Ops submitted but not yet drained by a flattener, summed across every
// live BatchingMap — the queue depth the footprint sampler plots.
// Maintained only under obs::enabled() (producers are the hot path).
inline std::atomic<std::int64_t> g_queue_depth{0};

// Registers the queue-depth probe with the obs sampler. Idempotent;
// called by every BatchingMap constructor and by the bench glue (the
// latter so the column exists even when the sampler starts before the
// first map is built).
inline void register_txn_probes() {
  obs::Sampler::instance().register_probe("txn/queue_depth", [] {
    return g_queue_depth.load(std::memory_order_relaxed);
  });
}

// The operations a producer may submit. Updates are upserts today; the enum
// leaves room for deletes once the tree grows a bulk difference path.
enum class BatchOp : std::uint8_t { kUpsert };

// K and V must be default-constructible and copyable (they live in ring
// slots); Aug is any ftree augmentation; VMImpl is a vm/ algorithm template
// (e.g. vm::PswfVersionManager for precise GC, vm::BaseVersionManager for
// the GC-off ablation).
template <class K, class V, class Aug, template <class> class VMImpl>
class BatchingMap {
 public:
  using Map = ftree::FMap<K, V, Aug>;
  using Entry = typename Map::Entry;
  using VM = VMImpl<Map>;
  static_assert(vm::VersionManagerFor<VM, Map>);

  // A pinned consistent snapshot. The FMap copy holds the version's nodes
  // alive by reference count, independent of the VM, so a ReadTxn may
  // outlive any number of later commits at zero cost to the writer.
  class ReadTxn {
   public:
    const Map& map() const { return snap_; }
    const Map* operator->() const { return &snap_; }

   private:
    friend class BatchingMap;
    explicit ReadTxn(Map snap) : snap_(std::move(snap)) {}
    Map snap_;
  };

  BatchingMap(int producers, Map initial,
              std::size_t buffer_capacity = std::size_t{1} << 14,
              std::size_t max_batch = std::size_t{1} << 16)
      : producers_(producers),
        max_batch_(max_batch > 0 ? max_batch : 1),
        vm_(producers + 1, alloc::create<Map>(std::move(initial))) {
    assert(producers >= 1);
    const std::size_t cap =
        std::bit_ceil(buffer_capacity > 0 ? buffer_capacity : 1);
    inflight_limit_ = max_batch_ < cap
                          ? std::max<std::uint64_t>(2, max_batch_)
                          : cap;
    // A batch can never exceed what admission control lets exist at once,
    // so cap the fill target there: the flattener then never waits for ops
    // that blocked producers cannot send (no reliance on the idle timeout).
    batch_target_ = std::max<std::size_t>(
        1, std::min<std::size_t>(
               max_batch_, static_cast<std::size_t>(producers_) *
                               static_cast<std::size_t>(inflight_limit_)));
    rings_.reserve(static_cast<std::size_t>(producers_));
    for (int p = 0; p < producers_; ++p) {
      rings_.push_back(std::make_unique<Ring>(cap));
    }
    // Register the txn/, reclaim-lane, and allocator metrics up front so a
    // stats-on run exports them even when an event (a stall, a reject, a
    // deferred batch, a depot transfer) never fires.
    if (obs::enabled()) {
      (void)BatchingStats::get();
      (void)vm::ReclaimStats::get();
      (void)alloc::AllocStats::get();
      register_txn_probes();
    }
    flattener_ = std::thread([this] { flatten_loop(); });
  }

  BatchingMap(const BatchingMap&) = delete;
  BatchingMap& operator=(const BatchingMap&) = delete;

  // Quiescent teardown: callers must have stopped submitting and dropped
  // their ReadTxns' pins on the manager (held snapshots stay valid — they
  // own their nodes). Commits everything still buffered, drains the
  // background reclaim lane (deferred frees from those commits — even a
  // backed-up lane is fully freed before this returns), then frees every
  // version the manager tracks.
  ~BatchingMap() {
    stop_.store(true, std::memory_order_release);
    flattener_.join();
    vm::reclaim_quiesce();
    for (Map* dead : vm_.shutdown_drain()) alloc::destroy(dead);
  }

  // Asynchronous update: enqueues and returns. Blocks only for admission
  // control (the op is at most ~2 batch publications from commit then).
  void submit(int p, BatchOp op, const K& k, const V& v) {
    assert(p >= 0 && p < producers_);
    Ring& r = *rings_[static_cast<std::size_t>(p)];
    const std::uint64_t t = r.pushed.load(std::memory_order_relaxed);
    if (t - r.committed.load(std::memory_order_acquire) >= inflight_limit_) {
      // Admission control rejected the op on first try; count the blocked
      // submit once, then wait out the backlog.
      if (obs::enabled()) BatchingStats::get().admission_rejects.add();
      while (t - r.committed.load(std::memory_order_acquire) >=
             inflight_limit_) {
        std::this_thread::yield();
      }
    }
    Slot& s = r.slots[t & r.mask];
    s.key = k;
    s.val = v;
    s.op = op;
    // Depth up BEFORE the publish: the slot is invisible until the release
    // store, so the gauge over-counts by at most one in-flight op instead of
    // going transiently negative when the flattener drains and decrements
    // between the publish and a late increment.
    if (obs::enabled()) g_queue_depth.fetch_add(1, std::memory_order_relaxed);
    r.pushed.store(t + 1, std::memory_order_release);
  }

  // Synchronous update: stamps a ticket at submission and waits until the
  // flattener has published a version containing it. On return the write is
  // visible to every subsequent get/read_txn. The parked ticket is visible
  // to the flattener, which commits a partial batch as soon as every ring
  // has run dry with a sync waiter already drained — a producer blocked
  // here never waits on a batch that cannot fill.
  void upsert_sync(int p, const K& k, const V& v) {
    if (!obs::enabled()) {
      upsert_sync_impl(p, k, v);
      return;
    }
    Timer t;
    upsert_sync_impl(p, k, v);
    BatchingStats::get().commit_latency_ns.record(t.nanos());
  }

  // Point read against the current version via VM slot p.
  std::optional<V> get(int p, const K& k) {
    Map* cur = vm_.acquire(p);
    const V* v = cur->find(k);
    std::optional<V> out = v != nullptr ? std::optional<V>(*v) : std::nullopt;
    vm::reclaim_payloads(vm_.release(p), alloc::PoolDispose{});
    return out;
  }

  // Snapshot read: pins the current version O(1) and immediately releases
  // the VM slot — the returned transaction reads a frozen map.
  ReadTxn read_txn(int p) {
    Map* cur = vm_.acquire(p);
    Map snap = *cur;
    vm::reclaim_payloads(vm_.release(p), alloc::PoolDispose{});
    return ReadTxn(std::move(snap));
  }

  // Commit ticket for everything producer p has submitted so far: the
  // ops are committed once p's committed cursor reaches it. Together with
  // wait_committed this is the seam a multi-shard caller (txn/sharded.h)
  // uses to submit to several shards first and only then park on each
  // shard's ticket — the per-shard waits overlap instead of serializing.
  std::uint64_t submitted_ticket(int p) const {
    assert(p >= 0 && p < producers_);
    return rings_[static_cast<std::size_t>(p)]->pushed.load(
        std::memory_order_relaxed);
  }

  // Parks until producer p's ops up to `ticket` are committed, with the
  // parked ticket visible to the flattener's stall detection (a partial
  // batch commits as soon as the rings run dry with this waiter drained).
  // Same serialization contract as submit: one thread per producer index.
  void wait_committed(int p, std::uint64_t ticket) {
    assert(p >= 0 && p < producers_);
    Ring& r = *rings_[static_cast<std::size_t>(p)];
    if (r.committed.load(std::memory_order_acquire) >= ticket) return;
    r.sync_waiting.store(ticket, std::memory_order_release);
    while (r.committed.load(std::memory_order_acquire) < ticket) {
      std::this_thread::yield();
    }
    r.sync_waiting.store(0, std::memory_order_release);
  }

  // Drains: waits until every op submitted before this call is committed.
  // While any flush is waiting the flattener commits eagerly instead of
  // filling batches, so the wait is bounded by the backlog, not the bound.
  void flush_all() {
    std::vector<std::uint64_t> target(static_cast<std::size_t>(producers_));
    for (int p = 0; p < producers_; ++p) {
      target[static_cast<std::size_t>(p)] =
          rings_[static_cast<std::size_t>(p)]->pushed.load(
              std::memory_order_acquire);
    }
    flush_waiters_.fetch_add(1, std::memory_order_acq_rel);
    for (int p = 0; p < producers_; ++p) {
      Ring& r = *rings_[static_cast<std::size_t>(p)];
      while (r.committed.load(std::memory_order_acquire) <
             target[static_cast<std::size_t>(p)]) {
        std::this_thread::yield();
      }
    }
    flush_waiters_.fetch_sub(1, std::memory_order_acq_rel);
  }

  // Ops contained in published versions (pre-dedup: every submission
  // counts once) and versions published. ops/batches is the mean batch.
  std::uint64_t ops_committed() const {
    return ops_committed_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_committed() const {
    return batches_committed_.load(std::memory_order_relaxed);
  }

  int producers() const { return producers_; }

 private:
  struct Slot {
    K key;
    V val;
    BatchOp op;
  };

  // SPSC ring: the producer owns `pushed`, the flattener owns `popped`
  // (drained into the current batch) and `committed` (published). Cursors
  // sit on separate cache lines so producer and flattener don't false-share.
  struct Ring {
    explicit Ring(std::size_t capacity)
        : slots(new Slot[capacity]), mask(capacity - 1) {}
    std::unique_ptr<Slot[]> slots;
    std::uint64_t mask;
    alignas(64) std::atomic<std::uint64_t> pushed{0};
    alignas(64) std::atomic<std::uint64_t> popped{0};
    alignas(64) std::atomic<std::uint64_t> committed{0};
    // Ticket (pushed cursor value, so never 0) of a producer parked in
    // upsert_sync; 0 when none. Written by the producer, read by the
    // flattener's stall detection.
    alignas(64) std::atomic<std::uint64_t> sync_waiting{0};
  };

  // Idle polls (all rings empty) the flattener tolerates while holding a
  // partial batch before committing it anyway. This is the liveness valve
  // for sparse submission patterns — e.g. every producer parked inside
  // upsert_sync at once — and is never hit under load.
  static constexpr int kIdlePatience = 64;

  int writer_pid() const { return producers_; }

  void upsert_sync_impl(int p, const K& k, const V& v) {
    submit(p, BatchOp::kUpsert, k, v);
    wait_committed(p, submitted_ticket(p));
  }

  void flatten_loop() {
    std::vector<Entry> batch;
    std::vector<std::uint64_t> from(static_cast<std::size_t>(producers_), 0);
    std::size_t raw_ops = 0;
    int idle_polls = 0;
    int cursor = 0;
    // Timestamp of the first op drained into the in-flight batch; 0 while
    // the batch is empty. Spans batch formation in the trace.
    std::uint64_t form_t0 = 0;
    for (;;) {
      const bool stopping = stop_.load(std::memory_order_acquire);
      const bool eager =
          stopping || flush_waiters_.load(std::memory_order_acquire) > 0;
      bool drained = false;
      for (int i = 0; i < producers_ && raw_ops < batch_target_; ++i) {
        const int p = (cursor + i) % producers_;
        Ring& r = *rings_[static_cast<std::size_t>(p)];
        const std::uint64_t head = r.popped.load(std::memory_order_relaxed);
        const std::uint64_t avail =
            r.pushed.load(std::memory_order_acquire) - head;
        const std::uint64_t take = std::min<std::uint64_t>(
            avail, static_cast<std::uint64_t>(batch_target_ - raw_ops));
        if (take == 0) continue;
        for (std::uint64_t j = 0; j < take; ++j) {
          const Slot& s = r.slots[(head + j) & r.mask];
          switch (s.op) {
            case BatchOp::kUpsert:
              batch.emplace_back(s.key, s.val);
              break;
          }
        }
        r.popped.store(head + take, std::memory_order_release);
        from[static_cast<std::size_t>(p)] += take;
        if (raw_ops == 0 && obs::trace_on()) form_t0 = obs::trace_now_ns();
        raw_ops += take;
        if (obs::enabled()) {
          g_queue_depth.fetch_sub(static_cast<std::int64_t>(take),
                                  std::memory_order_relaxed);
        }
        drained = true;
      }
      // Rotate the drain origin so no producer is starved when the batch
      // bound fills from the first rings scanned.
      cursor = (cursor + 1) % producers_;
      // Arrival stall: every ring ran dry this scan while some producer is
      // parked in upsert_sync on an op we already drained. Filling further
      // would only add the waiter's latency (its peers may be parked too),
      // so commit the partial batch now rather than ride the idle timeout.
      const bool sync_stalled =
          !drained && raw_ops > 0 && parked_waiter_drained();
      if (raw_ops >= batch_target_ ||
          (raw_ops > 0 &&
           (eager || sync_stalled || idle_polls >= kIdlePatience))) {
        if (sync_stalled && obs::enabled()) {
          BatchingStats::get().flattener_stalls.add();
          obs::trace_instant("txn/flattener_stall", raw_ops);
        }
        if (form_t0 != 0) {
          obs::trace_complete_since("txn/batch_form", form_t0, raw_ops);
          form_t0 = 0;
        }
        commit(batch, from, raw_ops);
        batch.clear();
        std::fill(from.begin(), from.end(), 0);
        raw_ops = 0;
        idle_polls = 0;
        continue;
      }
      if (!drained) {
        if (stopping && raw_ops == 0) break;
        ++idle_polls;
        std::this_thread::yield();
      } else {
        idle_polls = 0;
      }
    }
  }

  bool parked_waiter_drained() const {
    for (int p = 0; p < producers_; ++p) {
      const Ring& r = *rings_[static_cast<std::size_t>(p)];
      const std::uint64_t t = r.sync_waiting.load(std::memory_order_acquire);
      if (t != 0 && r.popped.load(std::memory_order_relaxed) >= t) {
        return true;
      }
    }
    return false;
  }

  // One transaction: dedup the drained ops (stable sort — the last
  // submission per key wins), bulk-apply over the acquired version, publish
  // through the VM, hand what it proved unreachable to reclaim (inline
  // delete, or the background lane under MVCC_BG_RECLAIM — the commit then
  // never stalls on a large retirement's destructor cost), then advance
  // the per-producer committed cursors (which is what releases upsert_sync
  // waiters and admission control).
  void commit(std::vector<Entry>& batch, const std::vector<std::uint64_t>& from,
              std::size_t raw_ops) {
    obs::TraceSpan span("txn/flattener_commit", raw_ops);
    Map* cur = vm_.acquire(writer_pid());
    ftree::prepare_batch(batch);
    Map next = cur->multi_inserted(std::span<const Entry>(batch));
    vm::reclaim_payloads(
        vm_.set(writer_pid(), alloc::create<Map>(std::move(next))),
        alloc::PoolDispose{});
    vm::reclaim_payloads(vm_.release(writer_pid()), alloc::PoolDispose{});
    ops_committed_.fetch_add(raw_ops, std::memory_order_relaxed);
    batches_committed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      BatchingStats::get().batch_size.record(
          static_cast<std::uint64_t>(raw_ops));
    }
    for (int p = 0; p < producers_; ++p) {
      const std::uint64_t n = from[static_cast<std::size_t>(p)];
      if (n == 0) continue;
      Ring& r = *rings_[static_cast<std::size_t>(p)];
      r.committed.store(r.committed.load(std::memory_order_relaxed) + n,
                        std::memory_order_release);
    }
  }

  const int producers_;
  const std::size_t max_batch_;
  std::uint64_t inflight_limit_;
  std::size_t batch_target_;
  VM vm_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<bool> stop_{false};
  std::atomic<int> flush_waiters_{0};
  std::atomic<std::uint64_t> ops_committed_{0};
  std::atomic<std::uint64_t> batches_committed_{0};
  std::thread flattener_;
};

}  // namespace mvcc::txn
