// Sharded multi-writer scale-out over the batching front-end — the
// ROADMAP's "millions of users" lever. One BatchingMap funnels every write
// through a single flattener, which is the measured write ceiling of the
// stack; ShardedMap partitions the key space across N independent
// BatchingMap shards (splitmix64-mixed key -> shard), each with its own
// flattener thread, vm/ version manager, rings, and alloc/obs accounting,
// so update throughput scales with shards until the memory system, not the
// flattener, is the limit.
//
// Shard routing: shard_of(k) = Lemire-reduce(splitmix64_mix(k), N). The
// mix makes the partition independent of any key-space structure (YCSB's
// dense [0, n) keys spread uniformly), and the reduction avoids requiring
// a power-of-two shard count.
//
// Cross-shard consistency protocol (the part a bag of independent maps
// lacks):
//
//   * snapshot(p) returns a version vector — one pinned FMap snapshot per
//     shard, acquired through each shard's vm/ acquire path
//     (vm::acquire_version_vector) — that is MUTUALLY CONSISTENT: it never
//     observes a torn multi_upsert_sync. Consistency comes from a seqlock
//     epoch: every multi-shard commit holds the epoch odd from before its
//     first submit until after every involved shard's sync ticket has
//     committed; the snapshot's validate-retry pass reads a stable (even)
//     epoch, pins all shards, and re-reads — a changed epoch means a
//     multi-shard commit overlapped, so the pins are dropped and the pass
//     retries (counted in sharded/snapshot_retries). After
//     kSnapshotRetryBudget failed passes the snapshot serializes behind
//     the committers by taking the multi-commit mutex, bounding the loop
//     under a storm of multi-shard commits.
//
//   * multi_upsert_sync(p, ops) commits a multi-key write spanning any
//     subset of shards atomically with respect to snapshots: submit every
//     op to its shard, then park on each involved shard's sync ticket
//     (BatchingMap::wait_committed — the waits overlap, they don't
//     serialize), all inside the odd-epoch window. Multi-shard commits are
//     serialized against each other by a mutex; single-shard traffic
//     (submit/upsert_sync/get) never touches it.
//
// What is and is not guaranteed: snapshot() vectors are atomic with
// respect to multi_upsert_sync; per-key reads (get) are linearizable per
// shard but two separate get calls can straddle a multi-shard commit —
// cross-shard atomicity is defined at the snapshot, exactly like a
// database read transaction.
//
// MVCC_SHARDS sizing and the latch: a ShardedMap constructed with
// shards=0 (the default) takes its shard count from mvcc::Config, and
// that value LATCHES at the first such construction (like MVCC_ALLOC's
// route latch): later setenv + reload_config() cannot change it for the
// rest of the process, so two maps can never disagree about the topology
// the process-wide sharded/shard<i>/* metrics are keyed by. An explicit
// shards argument (benches sweeping 1/2/4 in one process, tests) bypasses
// the latch without disturbing it.
//
// Metrics (registered up front, cumulative across instances like txn/*):
//   sharded/shard<i>/ops        ops committed by shard i's flattener
//   sharded/shard<i>/batches    versions shard i published
//   sharded/snapshots           cross-shard version vectors taken
//   sharded/snapshot_retries    validate passes that failed and retried
//   sharded/multi_commits       multi_upsert_sync calls committed
//   sharded/multi_ops           ops those calls carried
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/common/env.h"
#include "mvcc/common/rng.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/base.h"

namespace mvcc::txn {

// The MVCC_SHARDS latch: resolved from config() exactly once, at the first
// default-sized ShardedMap construction (or first explicit call). Mirrors
// the alloc/ route latch — reload_config() after this point changes
// config().shards but NOT the count default-sized maps are built with.
inline int latched_shard_count() {
  static const int n = config().shards;
  return n;
}

// Partitions the key space across N independent BatchingMap shards and
// adds the cross-shard snapshot / atomic multi-commit protocol described
// above. Template parameters match BatchingMap; every shard runs the same
// VM algorithm.
template <class K, class V, class Aug, template <class> class VMImpl>
class ShardedMap {
 public:
  using Shard = BatchingMap<K, V, Aug, VMImpl>;
  using Map = typename Shard::Map;
  using Entry = typename Map::Entry;
  using ReadTxn = typename Shard::ReadTxn;

  // A cross-shard version vector: one pinned, refcount-owned FMap snapshot
  // per shard, mutually consistent against multi-shard commits. Outlives
  // the ShardedMap like any ReadTxn outlives its BatchingMap.
  class Snapshot {
   public:
    // Point lookup routed to the owning shard's pinned version.
    const V* find(const K& k) const {
      return txns_[ShardedMap::shard_index(k, txns_.size())]->find(k);
    }

    std::size_t size() const {
      std::size_t n = 0;
      for (const auto& t : txns_) n += t.map().size();
      return n;
    }

    std::size_t shards() const { return txns_.size(); }

    // Shard s's pinned map, for callers iterating a whole shard.
    const Map& shard_map(std::size_t s) const { return txns_[s].map(); }

   private:
    friend class ShardedMap;
    explicit Snapshot(std::vector<ReadTxn> txns) : txns_(std::move(txns)) {}
    std::vector<ReadTxn> txns_;
  };

  // `shards` = 0 sizes from MVCC_SHARDS via the latch; an explicit count
  // bypasses the latch (bench sweeps, tests). `initial` is partitioned by
  // shard_of and bulk-built per shard. `producers`, `buffer_capacity` and
  // `max_batch` apply to every shard (each shard has `producers` rings, so
  // any producer may submit to any shard).
  ShardedMap(int producers, std::vector<Entry> initial = {}, int shards = 0,
             std::size_t buffer_capacity = std::size_t{1} << 14,
             std::size_t max_batch = std::size_t{1} << 16)
      : producers_(producers),
        nshards_(shards > 0 ? shards : latched_shard_count()) {
    assert(producers >= 1);
    std::vector<std::vector<Entry>> parts(
        static_cast<std::size_t>(nshards_));
    for (auto& e : initial) {
      parts[shard_of(e.first)].push_back(std::move(e));
    }
    shards_.reserve(static_cast<std::size_t>(nshards_));
    for (int s = 0; s < nshards_; ++s) {
      shards_.push_back(std::make_unique<Shard>(
          producers_, Map::from_entries(std::move(parts[static_cast<std::size_t>(s)])),
          buffer_capacity, max_batch));
    }
    last_ops_.assign(static_cast<std::size_t>(nshards_), 0);
    last_batches_.assign(static_cast<std::size_t>(nshards_), 0);
    if (obs::enabled()) {
      // Register the whole sharded/* namespace up front so a stats-on run
      // exports every key even when an event (a retry, a multi commit)
      // never fires.
      (void)snapshots_counter();
      (void)snapshot_retries_counter();
      (void)multi_commits_counter();
      (void)multi_ops_counter();
      for (int s = 0; s < nshards_; ++s) {
        (void)shard_counter(s, "ops");
        (void)shard_counter(s, "batches");
      }
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  // Quiescent teardown, shard by shard: each BatchingMap commits its
  // backlog, quiesces the background reclaim lane, and frees every version
  // its manager tracks — ftree::live_nodes() returns to baseline once the
  // map and its snapshots are gone.
  ~ShardedMap() { publish_shard_metrics(); }

  int shard_count() const { return nshards_; }
  int producers() const { return producers_; }

  // Where key k lives. Static form for tests that need to construct keys
  // landing in specific shards of a hypothetical N-way map.
  static std::size_t shard_index(const K& k, std::size_t nshards) {
    static_assert(std::is_integral_v<K>,
                  "shard routing mixes the key's integral image");
    const std::uint64_t h = splitmix64_mix(static_cast<std::uint64_t>(k));
    // Lemire reduction: uniform over [0, nshards) without requiring a
    // power-of-two count.
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(h) * nshards) >> 64);
  }

  std::size_t shard_of(const K& k) const {
    return shard_index(k, static_cast<std::size_t>(nshards_));
  }

  // Asynchronous single-key update, routed to the owning shard. Same
  // per-producer serialization contract as BatchingMap::submit.
  void submit(int p, BatchOp op, const K& k, const V& v) {
    shards_[shard_of(k)]->submit(p, op, k, v);
  }

  // Synchronous single-key update: visible to every subsequent get and
  // snapshot on return. Single-shard, so it never touches the multi-commit
  // mutex or the epoch.
  void upsert_sync(int p, const K& k, const V& v) {
    shards_[shard_of(k)]->upsert_sync(p, k, v);
  }

  // Point read against the owning shard's current version via VM slot p.
  std::optional<V> get(int p, const K& k) {
    return shards_[shard_of(k)]->get(p, k);
  }

  // Atomic multi-key commit spanning any subset of shards: from any
  // concurrent snapshot's view, all of `ops` are visible or none are.
  // Later duplicate keys win (each shard's flattener dedups last-wins in
  // submission order). Blocks until every involved shard has committed.
  // Multi-shard commits serialize against each other; they run concurrently
  // with single-shard traffic and (lock-free) snapshots.
  void multi_upsert_sync(int p, std::span<const Entry> ops) {
    if (ops.empty()) return;
    obs::TraceSpan span("sharded/multi_commit", ops.size());
    std::lock_guard<std::mutex> lk(multi_mu_);
    // Epoch to odd BEFORE the first submit: any snapshot pinned from here
    // until the matching even flip fails its validate pass.
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    // Submit everything first, then collect tickets, then park: the
    // per-shard commit waits overlap instead of adding up.
    for (const Entry& e : ops) {
      shards_[shard_of(e.first)]->submit(p, BatchOp::kUpsert, e.first,
                                         e.second);
    }
    std::vector<std::uint64_t> tickets(shards_.size(), 0);
    for (const Entry& e : ops) {
      const std::size_t s = shard_of(e.first);
      tickets[s] = shards_[s]->submitted_ticket(p);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (tickets[s] != 0) shards_[s]->wait_committed(p, tickets[s]);
    }
    // Even flip only after every involved shard's ticket committed: a
    // snapshot whose stable-epoch read sees the new value therefore sees
    // every shard's published version (release/acquire on the epoch).
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (obs::enabled()) {
      multi_commits_counter().add();
      multi_ops_counter().add(ops.size());
    }
  }

  // Cross-shard consistent snapshot through VM slot p (same slot contract
  // as get: one thread per producer index at a time). Lock-free validate-
  // retry against in-flight multi-shard commits; falls back to serializing
  // behind them after kSnapshotRetryBudget failed passes.
  Snapshot snapshot(int p) {
    obs::TraceSpan span("sharded/snapshot");
    std::uint64_t retries = 0;
    auto vec = vm::acquire_version_vector<ReadTxn>(
        shards_.size(), [this] { return stable_epoch(); },
        [this, p](std::size_t s) { return shards_[s]->read_txn(p); },
        &retries, kSnapshotRetryBudget);
    if (vec.empty()) {
      // Retry budget exhausted under a storm of multi-shard commits:
      // holding multi_mu_ excludes them, so one unvalidated pass suffices.
      std::lock_guard<std::mutex> lk(multi_mu_);
      vec.reserve(shards_.size());
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        vec.push_back(shards_[s]->read_txn(p));
      }
    }
    snapshot_retries_.fetch_add(retries, std::memory_order_relaxed);
    snapshots_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      snapshots_counter().add();
      if (retries != 0) snapshot_retries_counter().add(retries);
    }
    span.set_arg(retries);
    return Snapshot(std::move(vec));
  }

  // Drains every shard: all ops submitted before the call are committed on
  // return. Also publishes the per-shard committed-op deltas to the
  // sharded/shard<i>/* registry counters.
  void flush_all() {
    for (auto& s : shards_) s->flush_all();
    publish_shard_metrics();
  }

  // Committed-op / published-version totals, summed across shards.
  std::uint64_t ops_committed() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->ops_committed();
    return n;
  }
  std::uint64_t batches_committed() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_) n += s->batches_committed();
    return n;
  }
  std::uint64_t shard_ops_committed(int s) const {
    return shards_[static_cast<std::size_t>(s)]->ops_committed();
  }
  std::uint64_t shard_batches_committed(int s) const {
    return shards_[static_cast<std::size_t>(s)]->batches_committed();
  }

  // Instance-level snapshot telemetry (the registry counters aggregate
  // across instances; benches with stats off read these).
  std::uint64_t snapshots_taken() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshot_retries() const {
    return snapshot_retries_.load(std::memory_order_relaxed);
  }

 private:
  // Snapshot validate passes tolerated before serializing behind the
  // multi-commit mutex. Multi-shard commits are batched sync writes (tens
  // of microseconds each), so a handful of retries already spans several
  // full commit windows.
  static constexpr std::uint64_t kSnapshotRetryBudget = 8;

  // Spins until the epoch is even (no multi-shard commit in flight) and
  // returns it — the validation token of the snapshot protocol.
  std::uint64_t stable_epoch() const {
    for (;;) {
      const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      if ((e & 1) == 0) return e;
      std::this_thread::yield();
    }
  }

  // Pushes each shard's committed-op/batch deltas since the last publish
  // into the process-wide registry counters. Called at flush_all and
  // teardown — off every hot path.
  void publish_shard_metrics() {
    if (!obs::enabled()) return;
    std::lock_guard<std::mutex> lk(metrics_mu_);
    for (int s = 0; s < nshards_; ++s) {
      const std::uint64_t ops = shard_ops_committed(s);
      const std::uint64_t batches = shard_batches_committed(s);
      const std::size_t i = static_cast<std::size_t>(s);
      shard_counter(s, "ops").add(ops - last_ops_[i]);
      shard_counter(s, "batches").add(batches - last_batches_[i]);
      last_ops_[i] = ops;
      last_batches_[i] = batches;
    }
  }

  static obs::Counter& shard_counter(int s, const char* what) {
    return obs::registry().counter("sharded/shard" + std::to_string(s) +
                                   "/" + what);
  }
  static obs::Counter& snapshots_counter() {
    return obs::registry().counter("sharded/snapshots");
  }
  static obs::Counter& snapshot_retries_counter() {
    return obs::registry().counter("sharded/snapshot_retries");
  }
  static obs::Counter& multi_commits_counter() {
    return obs::registry().counter("sharded/multi_commits");
  }
  static obs::Counter& multi_ops_counter() {
    return obs::registry().counter("sharded/multi_ops");
  }

  const int producers_;
  const int nshards_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Seqlock epoch of the cross-shard protocol: even = quiescent, odd = a
  // multi-shard commit is between its first submit and last ticket.
  std::atomic<std::uint64_t> epoch_{0};
  // Serializes multi-shard commits (and the snapshot fallback) against
  // each other; never touched by single-shard traffic.
  std::mutex multi_mu_;

  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<std::uint64_t> snapshot_retries_{0};

  // publish_shard_metrics bookkeeping (guarded by metrics_mu_).
  std::mutex metrics_mu_;
  std::vector<std::uint64_t> last_ops_;
  std::vector<std::uint64_t> last_batches_;
};

}  // namespace mvcc::txn
