// The single reclamation seam for exact freed sets.
//
// Before this header there were two ways a freed set died: vm/'s
// reclaim_payloads (inline deletes or the exec/ background lane) and
// ftree::collect's direct per-node deletes. reclaim_batch unifies them:
// every call site hands over (1) the batch, (2) a LANE — free it here or
// on the background defer lane — and (3) a DISPOSE policy — operator
// delete or return-to-pool. Deferred vs inline vs pooled is now a policy
// choice made at one seam, not three divergent code paths.
//
// The background lane keeps PR 8's contract: reclaim_queue_depth() counts
// payloads published-but-unfreed (the sampler's reclaim/queue_depth
// column), every deferred batch runs under a `reclaim/batch_free` trace
// span, and quiesce() blocks until the lane is drained.
//
// Registry handles (under obs::enabled()):
//   reclaim/deferred         payloads routed to the background lane
//   reclaim/queue_depth_hwm  max payloads simultaneously awaiting a worker
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "mvcc/alloc/pool.h"
#include "mvcc/exec/pool.h"
#include "mvcc/obs/obs.h"

namespace mvcc::alloc {

// Where a freed set's destructors run: on the calling thread, or on the
// exec/ pool's lower-priority defer lane (off the commit path).
enum class ReclaimLane { kInline, kBackground };

// How a dead payload is disposed of once its lane runs it.
struct DeleteDispose {
  template <class T>
  void operator()(T* p) const {
    delete p;
  }
};

struct PoolDispose {
  template <class T>
  void operator()(T* p) const {
    destroy(p);
  }
};

// Payloads published to the background lane and not yet freed. Maintained
// unconditionally (two relaxed RMWs per deferred BATCH, off every hot
// path) so quiesce-style tests can watch it without obs on.
inline std::atomic<std::int64_t>& reclaim_queue_depth() {
  static std::atomic<std::int64_t> depth{0};
  return depth;
}

struct ReclaimStats {
  obs::Counter& deferred;
  obs::Gauge& queue_depth_hwm;

  static ReclaimStats& get() {
    static ReclaimStats s{obs::registry().counter("reclaim/deferred"),
                          obs::registry().gauge("reclaim/queue_depth_hwm")};
    return s;
  }
};

// Disposes of an exact freed set. Takes the vector by value so call sites
// pass a VM return directly: `reclaim_batch(vm.release(p), lane)`.
template <class T, class Dispose = DeleteDispose>
void reclaim_batch(std::vector<T*> dead, ReclaimLane lane,
                   Dispose dispose = {}) {
  if (dead.empty()) return;
  if (lane == ReclaimLane::kInline) {
    for (T* p : dead) dispose(p);
    return;
  }
  const auto n = static_cast<std::int64_t>(dead.size());
  const std::int64_t depth =
      reclaim_queue_depth().fetch_add(n, std::memory_order_relaxed) + n;
  if (obs::enabled()) {
    ReclaimStats::get().deferred.add(static_cast<std::uint64_t>(n));
    ReclaimStats::get().queue_depth_hwm.update_max(depth);
  }
  exec::Pool::instance().defer([batch = std::move(dead), dispose] {
    obs::TraceSpan span("reclaim/batch_free",
                        static_cast<std::uint64_t>(batch.size()));
    for (T* p : batch) dispose(p);
    reclaim_queue_depth().fetch_sub(static_cast<std::int64_t>(batch.size()),
                                    std::memory_order_relaxed);
  });
}

// Blocks until every batch ever routed to the background lane has been
// freed (helping drain from the calling thread). Trivially quiescent when
// the pool was never created or the lane never engaged.
inline void reclaim_quiesce() { exec::quiesce_deferred(); }

}  // namespace mvcc::alloc
