// Segregated-size slab allocator with per-thread magazine caches — the
// allocation substrate behind every ftree node, PLM tuple, and version
// payload.
//
// Why precision makes pooling pay: the paper's GC hands back EXACT freed
// sets, so retired blocks can be recycled wholesale into thread-local
// caches instead of trickling through the global heap one free() at a
// time (the insight the space-bounded MVGC follow-ups build on). The
// design is Bonwick's magazine layer:
//
//   ThreadCache  per thread, per size class: two magazines (`loaded` and
//                `previous`, each holding up to kMagazineSize free
//                blocks). Allocation pops from `loaded`; free pushes onto
//                it; when one runs dry/full the two swap, so a thread
//                ping-ponging alloc/free near a magazine boundary never
//                touches shared state.
//   Depot        per size class, global: two lock-free stacks of WHOLE
//                magazines (full of blocks / empty). A cache miss
//                exchanges magazines with the depot — one CAS moves
//                kMagazineSize blocks, which is what makes cross-thread
//                free cheap: blocks freed on thread B flow back to
//                allocating thread A a magazine at a time.
//   Slabs        when the depot is dry too, the owning size class carves
//                a fresh magazine's worth of blocks out of a slab
//                (MVCC_SLAB_BYTES, default 64 KiB) obtained from
//                operator new. Slabs are never returned to the OS while
//                the pool lives — blocks recirculate.
//
// The depot stacks are Treiber stacks made ABA-safe by indirection:
// magazines live in a grow-only chunked table and the stack head packs
// {32-bit magazine index, 32-bit tag} into one 64-bit CAS word, the tag
// bumped on every successful push/pop. Push is a release CAS and pop
// reads the head with acquire, which is the happens-before edge that
// publishes a magazine's (plain, non-atomic) count/items to its next
// owner.
//
// Routing: allocate()/deallocate() free functions check pooled() — the
// MVCC_ALLOC knob resolved ONCE per process, so an allocate can never be
// paired with a differently-routed deallocate — and fall back to plain
// operator new/delete for "malloc" mode or blocks larger than
// kMaxBlockBytes. Under AddressSanitizer every pooled block is poisoned
// while it sits free, so a use-after-free into the pool faults exactly
// like a heap use-after-free would.
//
// Telemetry (obs/ registry, touched only under obs::enabled()):
//   alloc/slabs_live       slabs currently backing the pools
//   alloc/cache_hits       allocations served by a thread-local magazine
//   alloc/depot_transfers  whole-magazine moves between caches and depot
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "mvcc/common/env.h"
#include "mvcc/obs/obs.h"

#if defined(__SANITIZE_ADDRESS__)
#define MVCC_ALLOC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MVCC_ALLOC_ASAN 1
#endif
#endif

#ifdef MVCC_ALLOC_ASAN
#include <sanitizer/asan_interface.h>
#define MVCC_ALLOC_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define MVCC_ALLOC_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define MVCC_ALLOC_POISON(p, n) ((void)0)
#define MVCC_ALLOC_UNPOISON(p, n) ((void)0)
#endif

namespace mvcc::alloc {

// Size classes are multiples of 16 bytes up to 256; every node/tuple/map
// payload in the system fits (Node<u64,u64> is 48 bytes). Larger requests
// take the operator-new fallback in the routing layer below.
inline constexpr std::size_t kQuantum = 16;
inline constexpr std::size_t kNumClasses = 16;
inline constexpr std::size_t kMaxBlockBytes = kQuantum * kNumClasses;
inline constexpr std::size_t kMagazineSize = 64;  // blocks per magazine

inline constexpr std::size_t size_class(std::size_t bytes) {
  return (bytes + kQuantum - 1) / kQuantum - 1;
}

inline constexpr std::size_t class_bytes(std::size_t ci) {
  return (ci + 1) * kQuantum;
}

// Registry handles, looked up once. Touched only under obs::enabled().
struct AllocStats {
  obs::Gauge& slabs_live;
  obs::Counter& cache_hits;
  obs::Counter& depot_transfers;

  static AllocStats& get() {
    static AllocStats s{obs::registry().gauge("alloc/slabs_live"),
                        obs::registry().counter("alloc/cache_hits"),
                        obs::registry().counter("alloc/depot_transfers")};
    return s;
  }
};

// Slabs currently live across every Pool, maintained unconditionally (one
// relaxed add per SLAB, nowhere near a hot path) so the footprint sampler
// can plot pooled memory growth without obs on.
inline std::atomic<std::int64_t> g_slabs_live{0};

// Registers the slab-count probe with the obs sampler. Idempotent; called
// by the bench glue before the sampler starts.
inline void register_alloc_probes() {
  obs::Sampler::instance().register_probe("alloc/slabs_live", [] {
    return g_slabs_live.load(std::memory_order_relaxed);
  });
}

class Pool;

namespace detail {

inline constexpr std::uint32_t kNoneIdx = 0xffffffffu;

// A magazine: a fixed-capacity stack of free blocks of one size class.
// count/items are PLAIN fields — a magazine is owned by exactly one thread
// cache or parked in a depot stack at any time, and the depot's
// release-push/acquire-pop is the handoff edge. Only `next` (the depot
// stack link) is atomic: a popping thread reads it speculatively while the
// magazine may still be re-linked by a competing pop's retry.
struct Magazine {
  std::atomic<std::uint32_t> next{kNoneIdx};
  std::uint32_t self = kNoneIdx;  // index in the owning pool's table
  std::uint32_t count = 0;
  void* items[kMagazineSize];
};

// One thread's magazine pair for every size class of one Pool. Nodes are
// heap-allocated, linked into the thread's cache list (below), and flushed
// back to the owner's depot when the thread exits.
struct ThreadCache {
  struct Slot {
    Magazine* loaded = nullptr;
    Magazine* previous = nullptr;
  };

  Pool* owner = nullptr;  // nulled if the pool dies first
  ThreadCache* next = nullptr;
  Slot cls[kNumClasses];
};

// Coordinates thread-exit cache flushes against ~Pool. Immortal (never
// destroyed) so a late-exiting thread can always take it, whatever order
// static destruction picks.
inline std::mutex& registry_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

struct ThreadCacheList {
  ThreadCache* head = nullptr;
  ~ThreadCacheList();  // defined after Pool: flushes into the owners
};

inline ThreadCacheList& tl_caches() {
  thread_local ThreadCacheList list;
  return list;
}

}  // namespace detail

class Pool {
 public:
  struct Stats {
    std::int64_t slabs = 0;
    std::int64_t magazines = 0;
    std::int64_t depot_transfers = 0;
  };

  // 0 = take the MVCC_SLAB_BYTES knob from config(). The floor keeps a
  // slab big enough to carve whole magazines of the largest class.
  explicit Pool(std::size_t slab_bytes = 0)
      : slab_bytes_(
            std::max<std::size_t>(slab_bytes != 0 ? slab_bytes
                                                  : config().slab_bytes,
                                  std::size_t{1} << 12)) {}

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Destroying a pool invalidates every block it ever handed out. Caches
  // registered by still-live threads are detached (their flush becomes a
  // no-op) — used by tests; the process-wide instance() is never destroyed.
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(detail::registry_mutex());
      for (detail::ThreadCache* c : caches_) c->owner = nullptr;
      caches_.clear();
    }
    for (std::atomic<detail::Magazine*>& chunk : chunks_) {
      delete[] chunk.load(std::memory_order_relaxed);
    }
    for (void* slab : slabs_) {
      MVCC_ALLOC_UNPOISON(slab, slab_bytes_);
      ::operator delete(slab);
    }
    g_slabs_live.fetch_sub(static_cast<std::int64_t>(slabs_.size()),
                           std::memory_order_relaxed);
  }

  // The process-wide pool every subsystem allocates from. Immortal (built
  // with new, never destroyed): worker threads and thread caches may
  // outlive any static destruction order, and still-reachable memory is
  // what LeakSanitizer expects at exit.
  static Pool& instance() {
    static Pool* p = new Pool();
    return *p;
  }

  void* allocate(std::size_t bytes) {
    assert(bytes > 0 && bytes <= kMaxBlockBytes);
    const std::size_t ci = size_class(bytes);
    detail::ThreadCache::Slot& slot = local_cache().cls[ci];
    detail::Magazine* m = slot.loaded;
    if (m != nullptr && m->count > 0) {
      if (obs::enabled()) AllocStats::get().cache_hits.add();
      void* p = m->items[--m->count];
      MVCC_ALLOC_UNPOISON(p, class_bytes(ci));
      return p;
    }
    if (slot.previous != nullptr && slot.previous->count > 0) {
      std::swap(slot.loaded, slot.previous);
      if (obs::enabled()) AllocStats::get().cache_hits.add();
      void* p = slot.loaded->items[--slot.loaded->count];
      MVCC_ALLOC_UNPOISON(p, class_bytes(ci));
      return p;
    }
    return allocate_slow(ci, slot);
  }

  void deallocate(void* p, std::size_t bytes) {
    assert(p != nullptr && bytes > 0 && bytes <= kMaxBlockBytes);
    const std::size_t ci = size_class(bytes);
    detail::ThreadCache::Slot& slot = local_cache().cls[ci];
    push_free(ci, slot, p);
  }

  // Frees a whole batch of same-class blocks (an exact freed set), paying
  // the cache lookup once; full magazines stream to the depot in O(1)
  // whole-magazine pushes.
  void deallocate_batch(void* const* blocks, std::size_t n,
                        std::size_t bytes) {
    if (n == 0) return;
    assert(bytes > 0 && bytes <= kMaxBlockBytes);
    const std::size_t ci = size_class(bytes);
    detail::ThreadCache::Slot& slot = local_cache().cls[ci];
    for (std::size_t i = 0; i < n; ++i) push_free(ci, slot, blocks[i]);
  }

  Stats stats() const {
    Stats s;
    s.slabs = slab_count_.load(std::memory_order_relaxed);
    s.magazines = magazine_count_.load(std::memory_order_relaxed);
    s.depot_transfers = transfer_count_.load(std::memory_order_relaxed);
    return s;
  }

  std::size_t slab_bytes() const { return slab_bytes_; }

 private:
  friend struct detail::ThreadCacheList;

  // ABA-safe Treiber stack of magazine INDICES: the head packs
  // {tag, index}, and the tag advances on every successful CAS, so a
  // pop's speculative `next` read can never be installed against a head
  // that was popped and re-pushed in between.
  class TaggedStack {
   public:
    void push(Pool& pool, std::uint32_t idx) {
      detail::Magazine& m = pool.mag(idx);
      std::uint64_t cur = top_.load(std::memory_order_relaxed);
      for (;;) {
        m.next.store(index_of(cur), std::memory_order_relaxed);
        if (top_.compare_exchange_weak(cur, make(tag_of(cur) + 1, idx),
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
          return;
        }
      }
    }

    // kNoneIdx when empty.
    std::uint32_t pop(Pool& pool) {
      std::uint64_t cur = top_.load(std::memory_order_acquire);
      for (;;) {
        const std::uint32_t idx = index_of(cur);
        if (idx == detail::kNoneIdx) return detail::kNoneIdx;
        const std::uint32_t next =
            pool.mag(idx).next.load(std::memory_order_relaxed);
        if (top_.compare_exchange_weak(cur, make(tag_of(cur) + 1, next),
                                       std::memory_order_acquire,
                                       std::memory_order_acquire)) {
          return idx;
        }
      }
    }

   private:
    static constexpr std::uint64_t make(std::uint64_t tag,
                                        std::uint32_t idx) {
      return (tag << 32) | idx;
    }
    static constexpr std::uint32_t index_of(std::uint64_t v) {
      return static_cast<std::uint32_t>(v);
    }
    static constexpr std::uint64_t tag_of(std::uint64_t v) { return v >> 32; }

    std::atomic<std::uint64_t> top_{make(0, detail::kNoneIdx)};
  };

  struct SizeClass {
    TaggedStack full;
    TaggedStack empty;
    std::mutex slab_mu;  // guards cur/end carving
    char* cur = nullptr;
    char* end = nullptr;
  };

  // Grow-only chunked magazine table: chunk pointers are atomic so mag()
  // stays lock-free while create_magazine() (mutex-guarded, rare) installs
  // new chunks. Indices are never reused or invalidated.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kMaxChunks = 1u << 12;

  detail::Magazine& mag(std::uint32_t idx) {
    detail::Magazine* chunk =
        chunks_[idx >> kChunkShift].load(std::memory_order_acquire);
    return chunk[idx & (kChunkSize - 1)];
  }

  std::uint32_t create_magazine() {
    std::lock_guard<std::mutex> lock(table_mu_);
    const std::uint32_t idx = magazine_next_;
    const std::uint32_t chunk = idx >> kChunkShift;
    if (chunk >= kMaxChunks) throw std::bad_alloc();  // ~16 GiB of blocks
    if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
      chunks_[chunk].store(new detail::Magazine[kChunkSize],
                           std::memory_order_release);
    }
    ++magazine_next_;
    magazine_count_.fetch_add(1, std::memory_order_relaxed);
    mag(idx).self = idx;
    return idx;
  }

  detail::ThreadCache& local_cache() {
    // One-entry lookaside: almost every call in a process uses instance().
    // The owner check guards against a dead pool's address being reused by
    // a new Pool (sequential stack-allocated pools in tests): ~Pool nulls
    // each cache's owner, and the cache object itself is owned by the
    // thread's list, so it stays dereferenceable until thread exit.
    thread_local Pool* last_pool = nullptr;
    thread_local detail::ThreadCache* last_cache = nullptr;
    if (last_pool == this && last_cache->owner == this) return *last_cache;
    detail::ThreadCacheList& list = detail::tl_caches();
    detail::ThreadCache* c = list.head;
    while (c != nullptr && c->owner != this) c = c->next;
    if (c == nullptr) {
      c = new detail::ThreadCache;
      c->owner = this;
      {
        std::lock_guard<std::mutex> lock(detail::registry_mutex());
        caches_.push_back(c);
      }
      c->next = list.head;
      list.head = c;
    }
    last_pool = this;
    last_cache = c;
    return *c;
  }

  void* allocate_slow(std::size_t ci, detail::ThreadCache::Slot& slot) {
    SizeClass& sc = classes_[ci];
    // Exchange with the depot: retire the dry loaded magazine, take a full
    // one. One CAS each way moves kMagazineSize blocks.
    const std::uint32_t full = sc.full.pop(*this);
    if (full != detail::kNoneIdx) {
      if (slot.loaded != nullptr) {
        sc.empty.push(*this, slot.loaded->self);
      }
      slot.loaded = &mag(full);
      note_transfer(1);
      void* p = slot.loaded->items[--slot.loaded->count];
      MVCC_ALLOC_UNPOISON(p, class_bytes(ci));
      return p;
    }
    // Depot dry: carve a magazine's worth of fresh blocks from the slab.
    detail::Magazine* m = slot.loaded;
    if (m == nullptr) {
      const std::uint32_t e = sc.empty.pop(*this);
      m = e != detail::kNoneIdx ? &mag(e) : &mag(create_magazine());
      m->count = 0;
      slot.loaded = m;
    }
    carve(ci, sc, *m);
    void* p = m->items[--m->count];
    MVCC_ALLOC_UNPOISON(p, class_bytes(ci));
    return p;
  }

  void carve(std::size_t ci, SizeClass& sc, detail::Magazine& m) {
    const std::size_t bs = class_bytes(ci);
    std::lock_guard<std::mutex> lock(sc.slab_mu);
    while (m.count < kMagazineSize) {
      if (sc.cur == nullptr ||
          static_cast<std::size_t>(sc.end - sc.cur) < bs) {
        char* slab = static_cast<char*>(::operator new(slab_bytes_));
        {
          std::lock_guard<std::mutex> slock(slabs_mu_);
          slabs_.push_back(slab);
        }
        sc.cur = slab;
        sc.end = slab + slab_bytes_;
        slab_count_.fetch_add(1, std::memory_order_relaxed);
        const std::int64_t live =
            g_slabs_live.fetch_add(1, std::memory_order_relaxed) + 1;
        if (obs::enabled()) AllocStats::get().slabs_live.set(live);
      }
      m.items[m.count++] = sc.cur;
      MVCC_ALLOC_POISON(sc.cur, bs);
      sc.cur += bs;
    }
  }

  void push_free(std::size_t ci, detail::ThreadCache::Slot& slot, void* p) {
    MVCC_ALLOC_POISON(p, class_bytes(ci));
    detail::Magazine* m = slot.loaded;
    if (m != nullptr && m->count < kMagazineSize) {
      m->items[m->count++] = p;
      return;
    }
    push_free_slow(ci, slot, p);
  }

  void push_free_slow(std::size_t ci, detail::ThreadCache::Slot& slot,
                      void* p) {
    if (slot.previous != nullptr && slot.previous->count < kMagazineSize) {
      std::swap(slot.loaded, slot.previous);
      slot.loaded->items[slot.loaded->count++] = p;
      return;
    }
    SizeClass& sc = classes_[ci];
    // Both magazines full (or absent): hand the full `previous` to the
    // depot, shift `loaded` down, install an empty magazine on top.
    if (slot.previous != nullptr) {
      sc.full.push(*this, slot.previous->self);
      note_transfer(1);
    }
    slot.previous = slot.loaded;
    const std::uint32_t e = sc.empty.pop(*this);
    detail::Magazine* m =
        e != detail::kNoneIdx ? &mag(e) : &mag(create_magazine());
    m->count = 0;
    slot.loaded = m;
    m->items[m->count++] = p;
  }

  // Thread exit: park the cache's magazines back in the depot so their
  // blocks stay allocatable. Called under registry_mutex().
  void flush_cache(detail::ThreadCache& cache) {
    for (std::size_t ci = 0; ci < kNumClasses; ++ci) {
      for (detail::Magazine* m :
           {cache.cls[ci].loaded, cache.cls[ci].previous}) {
        if (m == nullptr) continue;
        if (m->count > 0) {
          classes_[ci].full.push(*this, m->self);
          note_transfer(1);
        } else {
          classes_[ci].empty.push(*this, m->self);
        }
      }
      cache.cls[ci].loaded = nullptr;
      cache.cls[ci].previous = nullptr;
    }
    for (std::size_t i = 0; i < caches_.size(); ++i) {
      if (caches_[i] == &cache) {
        caches_[i] = caches_.back();
        caches_.pop_back();
        break;
      }
    }
  }

  void note_transfer(std::int64_t n) {
    transfer_count_.fetch_add(n, std::memory_order_relaxed);
    if (obs::enabled()) {
      AllocStats::get().depot_transfers.add(static_cast<std::uint64_t>(n));
    }
  }

  const std::size_t slab_bytes_;
  SizeClass classes_[kNumClasses];
  std::atomic<detail::Magazine*> chunks_[kMaxChunks] = {};
  std::mutex table_mu_;
  std::uint32_t magazine_next_ = 0;
  std::mutex slabs_mu_;
  std::vector<void*> slabs_;
  std::vector<detail::ThreadCache*> caches_;  // under registry_mutex()
  std::atomic<std::int64_t> slab_count_{0};
  std::atomic<std::int64_t> magazine_count_{0};
  std::atomic<std::int64_t> transfer_count_{0};
};

namespace detail {

inline ThreadCacheList::~ThreadCacheList() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  ThreadCache* c = head;
  while (c != nullptr) {
    ThreadCache* next = c->next;
    if (c->owner != nullptr) c->owner->flush_cache(*c);
    delete c;
    c = next;
  }
  head = nullptr;
}

// -1 = unresolved. The MVCC_ALLOC route latches at the first allocation
// and never flips afterwards: a block must be freed by the same policy
// that allocated it.
inline std::atomic<int>& pooled_flag() {
  static std::atomic<int> flag{-1};
  return flag;
}

}  // namespace detail

// Whether fixed-size blocks route through the slab pool (MVCC_ALLOC
// unset/"slab") or plain operator new/delete ("malloc" — the A/B
// fallback). Resolved once per process.
inline bool pooled() {
  int v = detail::pooled_flag().load(std::memory_order_relaxed);
  if (v < 0) [[unlikely]] {
    v = config().alloc_pooled ? 1 : 0;
    detail::pooled_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

// --- Routing front: the allocation API the subsystems consume --------------

inline void* allocate(std::size_t bytes) {
  if (bytes == 0 || bytes > kMaxBlockBytes || !pooled()) {
    return ::operator new(bytes);
  }
  return Pool::instance().allocate(bytes);
}

inline void deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  if (bytes == 0 || bytes > kMaxBlockBytes || !pooled()) {
    ::operator delete(p);
    return;
  }
  Pool::instance().deallocate(p, bytes);
}

// Frees the raw storage of a batch of same-size blocks (destructors
// already run) — the O(1)-ish sink for exact freed sets.
inline void deallocate_batch(void* const* blocks, std::size_t n,
                             std::size_t bytes) {
  if (n == 0) return;
  if (bytes == 0 || bytes > kMaxBlockBytes || !pooled()) {
    for (std::size_t i = 0; i < n; ++i) ::operator delete(blocks[i]);
    return;
  }
  Pool::instance().deallocate_batch(blocks, n, bytes);
}

// Typed construct/destroy through the routing front, the drop-in
// replacement for `new T(...)` / `delete p`.
template <class T, class... Args>
T* create(Args&&... args) {
  static_assert(alignof(T) <= kQuantum,
                "pool blocks are 16-byte aligned; over-aligned types must "
                "take the operator-new path");
  void* mem = allocate(sizeof(T));
  try {
    return ::new (mem) T(std::forward<Args>(args)...);
  } catch (...) {
    deallocate(mem, sizeof(T));
    throw;
  }
}

template <class T>
void destroy(T* p) {
  if (p == nullptr) return;
  p->~T();
  deallocate(p, sizeof(T));
}

}  // namespace mvcc::alloc
