// Shared work-stealing task pool: the execution substrate for the bulk
// tree operations' fork-join parallelism (ftree/ops.h) and for
// off-critical-path precise reclamation (vm/base.h MVCC_BG_RECLAIM).
//
// Before this layer every fork was a `std::async` thread (fine for one big
// batch, wasteful for many small concurrent unions, with the spawn-failure
// fallback hand-rolled at every call site) and every freed set was deleted
// inline on whoever dropped the last reference, stalling the flattener on
// large retirements. The pool replaces both with one process-wide set of
// workers (sized by MVCC_THREADS) and two lanes:
//
//   * FOREGROUND (fork-join): invoke2(fa, fb) forks fb as a stack-allocated
//     task onto the caller's deque, runs fa inline, then JOINS by helping —
//     popping its own deque (LIFO) or stealing — until fb's done flag is
//     set. The caller is always one of the computation's workers, so a pool
//     of W threads gives MVCC_THREADS = W+1 way parallelism, and a pool
//     that failed to spawn any thread still completes every invoke2 (the
//     caller self-executes), centralizing the old per-site fallbacks.
//   * BACKGROUND (defer/quiesce): defer(fn) queues work workers run only
//     when the foreground is empty; quiesce() helps drain and blocks until
//     every deferred task has COMPLETED. vm/base.h publishes exact freed
//     sets here so release/set return before the destructors run.
//
// Deque design: per-worker mutex-guarded deques — owner pushes and pops at
// the back (LIFO, the fork-join locality order), thieves take HALF from the
// front (FIFO, the oldest and therefore biggest subproblems), parking the
// extras on their own deque. A lock-free Chase–Lev deque does not extend
// soundly to steal-half (the owner's uncontended pop takes non-top elements
// without a CAS, so a thief CASing top across k elements can claim one the
// owner also took); a mutex makes the take-k atomic, and every task is a
// >= bulk-grain (thousands of node visits) subproblem or a whole reclaim
// batch, so the lock is amortized to noise. External threads (the
// flattener, bench drivers) fork through a shared inject queue and join by
// helping from it, so any thread may call invoke2.
//
// Idle workers park on a condvar with a 1ms cap: the push->notify pair
// leaves a benign missed-wakeup window (a worker between its empty scan
// and its wait), and the bounded wait turns that into at most 1ms of added
// latency instead of a hang. On the default single-core CI box parking
// matters more than stealing — spinning workers would strangle the thread
// that has the work.
//
// Lifetime: Pool::instance() is a lazy singleton torn down at static
// destruction; its constructor touches the obs registry/tracer singletons
// first so they are destroyed after the workers are joined. Shutdown
// drains the background lane (workers run every queued deferred task
// before exiting; the destructor self-drains stragglers), so deferred
// reclamation can never leak at process exit. invoke2 must not be in
// flight across ~Pool (joiners self-execute, so this only requires not
// destroying the pool mid-computation).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "mvcc/common/env.h"
#include "mvcc/obs/obs.h"

namespace mvcc::exec {

// Process-wide executor telemetry (obs registry handles, touched only
// under obs::enabled()):
//
//   exec/tasks    tasks executed by the pool (forks + deferred batches)
//   exec/steals   tasks that migrated off the deque they were pushed to
inline obs::Counter& exec_tasks() {
  static obs::Counter& c = obs::registry().counter("exec/tasks");
  return c;
}

inline obs::Counter& exec_steals() {
  static obs::Counter& c = obs::registry().counter("exec/steals");
  return c;
}

class Pool;

namespace detail {
// Worker identity: which pool (if any) owns the current thread, and its
// deque index there. Non-worker threads keep {nullptr, -1} and go through
// the inject queue.
inline thread_local Pool* tl_pool = nullptr;
inline thread_local int tl_id = -1;
}  // namespace detail

class Pool {
 public:
  // Workers for the process-wide pool: MVCC_THREADS minus the caller
  // (invoke2's caller participates in the fork-join, so total concurrency
  // is workers + 1), floored at 1 so the background lane always has a
  // consumer.
  static int default_workers() { return std::max(1, config().threads - 1); }

  explicit Pool(int workers) {
    const int n = std::max(1, workers);
    // Touch the process-lifetime singletons the workers use so static
    // destruction runs them AFTER ~Pool has joined the threads.
    (void)obs::registry();
    (void)obs::Tracer::instance();
    (void)obs::trace_now_ns();
    if (obs::enabled()) {
      (void)exec_tasks();
      (void)exec_steals();
    }
    deques_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) deques_.push_back(std::make_unique<Deque>());
    threads_.reserve(static_cast<std::size_t>(n));
    try {
      for (int i = 0; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
      }
    } catch (const std::system_error&) {
      // Thread limits: run with however many workers actually started.
      // Even zero works — invoke2 callers and quiesce self-execute.
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    stop_.store(true, std::memory_order_release);
    {
      // Empty critical section: a worker between its stop check and its
      // wait holds idle_mu_, so locking here orders the notify after it
      // has actually begun waiting.
      std::lock_guard<std::mutex> lock(idle_mu_);
    }
    idle_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    // Workers drained the lanes before exiting; self-drain anything
    // deferred in the teardown window.
    while (run_one_deferred()) {
    }
  }

  // The process-wide pool, created on first use and sized default_workers().
  static Pool& instance();

  // The process-wide pool if instance() has ever run, else nullptr — so
  // quiesce paths need not create a pool just to find nothing to drain.
  static Pool* instance_if_created();

  // Worker threads actually running (may be below the requested count
  // under thread exhaustion; the pool still functions).
  int workers() const { return static_cast<int>(threads_.size()); }

  // Fork-join: runs fa() on the calling thread and fb() potentially on a
  // worker, returning {fa(), fb()}. The caller helps execute queued forks
  // while it waits, so nesting invoke2 to any depth cannot deadlock: every
  // blocked joiner is running tasks. An exception from either side
  // propagates after both completed (fa's wins if both throw); the other
  // side's result is destroyed, which for raw owning pointers means the
  // same leak-on-OOM the std::async path had.
  template <class FA, class FB>
  auto invoke2(FA&& fa, FB&& fb)
      -> std::pair<std::invoke_result_t<FA&>, std::invoke_result_t<FB&>> {
    using RA = std::invoke_result_t<FA&>;
    using RB = std::invoke_result_t<FB&>;
    static_assert(!std::is_void_v<RA> && !std::is_void_v<RB>,
                  "invoke2 requires value-returning callables");
    ForkTaskImpl<std::decay_t<FB>, RB> fork(std::forward<FB>(fb));
    push_fork(&fork);
    std::optional<RA> ra;
    try {
      ra.emplace(fa());
    } catch (...) {
      // The fork frame lives on this stack: it must finish (here or on a
      // thief) before unwinding can destroy it.
      join_fork(fork);
      throw;
    }
    join_fork(fork);
    if (fork.error) std::rethrow_exception(fork.error);
    return {std::move(*ra), std::move(*fork.result)};
  }

  // Background lane: fn() runs on a worker once the foreground is empty.
  // fn must not throw (a throw is swallowed, not propagated) and must not
  // call quiesce (a deferred task waiting on the lane it occupies can
  // self-deadlock); deferring more work from a deferred task is fine.
  template <class F>
  void defer(F&& fn) {
    bg_pending_.fetch_add(1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_.push_back(std::make_unique<BgTaskImpl<std::decay_t<F>>>(
          std::forward<F>(fn)));
    }
    notify_work();
  }

  // Blocks until every task deferred so far has COMPLETED (not merely been
  // dequeued), helping run them from the calling thread. Callable from any
  // thread except a deferred task itself.
  void quiesce() {
    while (bg_pending_.load(std::memory_order_acquire) > 0) {
      if (!run_one_deferred()) std::this_thread::yield();
    }
  }

  // Deferred tasks queued or running. 0 means the background lane is dry.
  std::int64_t deferred_pending() const {
    return bg_pending_.load(std::memory_order_acquire);
  }

 private:
  struct Task {
    virtual void execute() = 0;

   protected:
    ~Task() = default;  // never deleted through the base; forks live on
                        // their joiner's stack
  };

  struct ForkTaskBase : Task {
    std::exception_ptr error;
    std::atomic<bool> done{false};
  };

  template <class FB, class RB>
  struct ForkTaskImpl final : ForkTaskBase {
    explicit ForkTaskImpl(FB f) : fn(std::move(f)) {}
    FB fn;
    std::optional<RB> result;
    void execute() override {
      try {
        result.emplace(fn());
      } catch (...) {
        this->error = std::current_exception();
      }
      this->done.store(true, std::memory_order_release);
    }
  };

  struct BgTask {
    virtual void run() = 0;
    virtual ~BgTask() = default;
  };

  template <class F>
  struct BgTaskImpl final : BgTask {
    explicit BgTaskImpl(F f) : fn(std::move(f)) {}
    F fn;
    void run() override { fn(); }
  };

  struct Deque {
    std::mutex mu;
    std::deque<Task*> q;
  };

  void worker_loop(int id) {
    detail::tl_pool = this;
    detail::tl_id = id;
    for (;;) {
      Task* t = pop_back(*deques_[static_cast<std::size_t>(id)]);
      if (t == nullptr) t = try_steal(id);
      if (t != nullptr) {
        run_task(t);
        continue;
      }
      if (run_one_deferred()) continue;
      // Both lanes empty this scan; on stop that is the exit condition
      // (any fork still queued belongs to a joiner that self-executes).
      if (stop_.load(std::memory_order_acquire)) return;
      idle_wait();
    }
  }

  void run_task(Task* t) {
    t->execute();
    // `t` may be a stack frame its joiner is already destroying — done.
    if (obs::enabled()) exec_tasks().add();
  }

  bool run_one_deferred() {
    std::unique_ptr<BgTask> t;
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      if (bg_.empty()) return false;
      t = std::move(bg_.front());
      bg_.pop_front();
    }
    try {
      t->run();
    } catch (...) {
      // Deferred tasks are fire-and-forget; nothing to rethrow into.
    }
    if (obs::enabled()) exec_tasks().add();
    bg_pending_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  void push_fork(Task* t) {
    if (detail::tl_pool == this) {
      Deque& d = *deques_[static_cast<std::size_t>(detail::tl_id)];
      std::lock_guard<std::mutex> lock(d.mu);
      d.q.push_back(t);
    } else {
      std::lock_guard<std::mutex> lock(inject_.mu);
      inject_.q.push_back(t);
    }
    notify_work();
  }

  // Joins a fork by helping: run own-deque tasks (LIFO — our fork or an
  // ancestor's, both useful) or steal until the fork's done flag is set.
  // External joiners help from the inject queue's back (most likely their
  // own fork) and steal singles.
  void join_fork(ForkTaskBase& fork) {
    const bool worker_here = detail::tl_pool == this;
    const int id = worker_here ? detail::tl_id : -1;
    while (!fork.done.load(std::memory_order_acquire)) {
      Task* t = worker_here
                    ? pop_back(*deques_[static_cast<std::size_t>(id)])
                    : pop_back(inject_);
      if (t == nullptr) t = try_steal(id);
      if (t != nullptr) {
        run_task(t);
        continue;
      }
      std::this_thread::yield();
    }
  }

  static Task* pop_back(Deque& d) {
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.q.empty()) return nullptr;
    Task* t = d.q.back();
    d.q.pop_back();
    return t;
  }

  // Steals from the front of some victim (worker deques + the inject
  // queue). A worker thief takes half the victim's queue, parking the
  // extras on its own deque (where peers can re-steal them); an external
  // thief has no deque and takes one.
  Task* try_steal(int self) {
    const int n = static_cast<int>(deques_.size());
    const unsigned start = steal_cursor_.fetch_add(1, std::memory_order_relaxed);
    Task* first = nullptr;
    std::vector<Task*> extra;
    for (int i = 0; i <= n && first == nullptr; ++i) {
      const int v = static_cast<int>((start + static_cast<unsigned>(i)) %
                                     static_cast<unsigned>(n + 1));
      if (v == self) continue;
      Deque& d = v == n ? inject_ : *deques_[static_cast<std::size_t>(v)];
      std::lock_guard<std::mutex> lock(d.mu);
      if (d.q.empty()) continue;
      const std::size_t take = self >= 0 ? (d.q.size() + 1) / 2 : 1;
      first = d.q.front();
      d.q.pop_front();
      for (std::size_t k = 1; k < take; ++k) {
        extra.push_back(d.q.front());
        d.q.pop_front();
      }
    }
    if (first != nullptr && !extra.empty()) {
      {
        Deque& own = *deques_[static_cast<std::size_t>(self)];
        std::lock_guard<std::mutex> lock(own.mu);
        for (Task* t : extra) own.q.push_back(t);
      }
      notify_work();
    }
    if (first != nullptr && obs::enabled()) {
      exec_steals().add(1 + static_cast<std::uint64_t>(extra.size()));
    }
    return first;
  }

  void idle_wait() {
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }

  void notify_work() {
    if (sleepers_.load(std::memory_order_relaxed) == 0) return;
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
    }
    idle_cv_.notify_all();
  }

  std::vector<std::unique_ptr<Deque>> deques_;
  Deque inject_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> steal_cursor_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int> sleepers_{0};
  std::mutex bg_mu_;
  std::deque<std::unique_ptr<BgTask>> bg_;
  std::atomic<std::int64_t> bg_pending_{0};
};

namespace detail {
inline std::atomic<Pool*>& global_slot() {
  static std::atomic<Pool*> slot{nullptr};
  return slot;
}

// Wraps the singleton so the published pointer is set after construction
// completes and cleared before destruction begins — instance_if_created()
// never observes a half-built or dying pool.
struct GlobalPool {
  Pool pool{Pool::default_workers()};
  GlobalPool() { global_slot().store(&pool, std::memory_order_release); }
  ~GlobalPool() { global_slot().store(nullptr, std::memory_order_release); }
};
}  // namespace detail

inline Pool& Pool::instance() {
  static detail::GlobalPool g;
  return g.pool;
}

inline Pool* Pool::instance_if_created() {
  return detail::global_slot().load(std::memory_order_acquire);
}

// Fork-join on the process-wide pool: {fa(), fb()} with fb potentially on
// a worker. See Pool::invoke2.
template <class FA, class FB>
auto invoke2(FA&& fa, FB&& fb) {
  return Pool::instance().invoke2(std::forward<FA>(fa), std::forward<FB>(fb));
}

// Queues fn on the process-wide pool's background lane.
template <class F>
void defer(F&& fn) {
  Pool::instance().defer(std::forward<F>(fn));
}

// Drains the process-wide pool's background lane if the pool exists;
// trivially quiescent otherwise.
inline void quiesce_deferred() {
  if (Pool* p = Pool::instance_if_created()) p->quiesce();
}

}  // namespace mvcc::exec
