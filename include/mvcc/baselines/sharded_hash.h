// Sharded hash map baseline for Figure 7 ("hash", the Masstree stand-in).
//
// A fixed power-of-two bucket array (capacity is a constructor hint, as in
// the YCSB setup where the key universe is known up front — no resizing)
// with separate chaining, striped by a power-of-two set of shared_mutexes:
// bucket i is guarded by stripe i & (kStripes - 1), so finds from
// different stripes proceed fully in parallel and an upsert excludes only
// its own stripe. Keys are pre-mixed through splitmix64 so adjacent YCSB
// ranks spread across buckets.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "mvcc/common/rng.h"

namespace mvcc::baselines {

class ShardedHashMap {
 public:
  explicit ShardedHashMap(std::size_t capacity_hint = std::size_t{1} << 16)
      : mask_(bucket_count_for(capacity_hint) - 1),
        buckets_(mask_ + 1, nullptr),
        stripes_(kStripes) {}

  ShardedHashMap(const ShardedHashMap&) = delete;
  ShardedHashMap& operator=(const ShardedHashMap&) = delete;

  ~ShardedHashMap() {
    for (Entry* head : buckets_) {
      while (head != nullptr) {
        Entry* next = head->next;
        delete head;
        head = next;
      }
    }
  }

  void upsert(std::uint64_t key, std::uint64_t value) {
    const std::size_t b = bucket_of(key);
    std::unique_lock<std::shared_mutex> guard(stripe_of(b));
    for (Entry* e = buckets_[b]; e != nullptr; e = e->next) {
      if (e->key == key) {
        e->value = value;
        return;
      }
    }
    buckets_[b] = new Entry{key, value, buckets_[b]};
  }

  std::optional<std::uint64_t> find(std::uint64_t key) const {
    const std::size_t b = bucket_of(key);
    std::shared_lock<std::shared_mutex> guard(stripe_of(b));
    for (const Entry* e = buckets_[b]; e != nullptr; e = e->next) {
      if (e->key == key) return e->value;
    }
    return std::nullopt;
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint64_t value;
    Entry* next;
  };

  // Stripes are padded to a cache line so unrelated lock traffic does not
  // false-share.
  struct alignas(64) Stripe {
    std::shared_mutex m;
  };

  static constexpr std::size_t kStripes = 1024;  // power of two

  static std::size_t bucket_count_for(std::size_t hint) {
    std::size_t n = 64;
    while (n < hint) n <<= 1;
    return n;
  }

  std::size_t bucket_of(std::uint64_t key) const {
    return static_cast<std::size_t>(splitmix64_mix(key)) & mask_;
  }

  std::shared_mutex& stripe_of(std::size_t bucket) const {
    return stripes_[bucket & (kStripes - 1)].m;
  }

  const std::size_t mask_;
  std::vector<Entry*> buckets_;
  mutable std::vector<Stripe> stripes_;
};

}  // namespace mvcc::baselines
