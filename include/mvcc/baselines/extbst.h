// Lock-free external (leaf-oriented) BST baseline for Figure 7 ("ext-bst").
//
// Ellen et al. (PODC 2010) style: internal nodes route, leaves hold the
// key/value pairs, and an insert replaces a leaf with a freshly built
// internal node (old leaf + new leaf) via a flag-then-child-CAS protocol.
// A thread that finds the parent flagged helps complete the pending insert
// before retrying, so the structure is lock-free. bench_fig7's YCSB mixes
// never delete, which trims the full protocol to its insert half (IFlag
// only — DFlag/Mark exist to make deletion safe) and lets an upsert of a
// present key write the leaf's atomic value in place.
//
// Reclamation is the quiescence scheme the deletion-free workload allows:
// nothing is ever unlinked, so every node and Info record is pushed onto a
// lock-free allocation list at creation and freed exactly once by the
// destructor. CAS losers become garbage on that list rather than being
// freed early, which also rules out ABA on the update word (Info records
// are never reused while the tree is live).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "mvcc/common/rng.h"

namespace mvcc::baselines {

class ExternalBst {
 public:
  ExternalBst() {
    // Ellen's sentinel shape: root key inf2 with leaves inf1 < inf2; every
    // real key routes left of both sentinels.
    Leaf* l1 = make<Leaf>(Key{0, 1}, 0);
    Leaf* l2 = make<Leaf>(Key{0, 2}, 0);
    root_ = make<Internal>(Key{0, 2}, l1, l2);
  }

  ExternalBst(const ExternalBst&) = delete;
  ExternalBst& operator=(const ExternalBst&) = delete;

  ~ExternalBst() {
    for (AllocShard& shard : allocs_) {
      Tracked* cur = shard.head.load(std::memory_order_acquire);
      while (cur != nullptr) {
        Tracked* next = cur->alloc_next;
        delete cur;
        cur = next;
      }
    }
  }

  void upsert(std::uint64_t k, std::uint64_t v) {
    const Key key{splitmix64_mix(k), 0};
    for (;;) {
      SearchResult s = search(key);
      if (equal(s.leaf->key, key)) {
        static_cast<Leaf*>(s.leaf)->value.store(v, std::memory_order_release);
        return;
      }
      if (state_of(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      Leaf* nl = make<Leaf>(key, v);
      // New internal takes the old leaf's slot: smaller key left, larger
      // right, routing key = the larger of the two.
      Internal* ni = less(key, s.leaf->key)
                         ? make<Internal>(s.leaf->key, nl, s.leaf)
                         : make<Internal>(key, s.leaf, nl);
      IInfo* op = make<IInfo>(s.parent, s.leaf, ni);
      std::uintptr_t expected = s.pupdate;
      if (s.parent->update.compare_exchange_strong(
              expected, pack(op, kIFlag), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        help_insert(op);
        return;
      }
      help(expected);  // losers' nl/ni/op stay on the alloc list
    }
  }

  std::optional<std::uint64_t> find(std::uint64_t k) const {
    const Key key{splitmix64_mix(k), 0};
    const Node* cur = root_;
    while (!cur->leaf) {
      const Internal* in = static_cast<const Internal*>(cur);
      cur = less(key, in->key) ? in->left.load(std::memory_order_acquire)
                               : in->right.load(std::memory_order_acquire);
    }
    if (equal(cur->key, key)) {
      return static_cast<const Leaf*>(cur)->value.load(
          std::memory_order_acquire);
    }
    return std::nullopt;
  }

 private:
  // Real keys carry inf 0; the two Ellen sentinels are inf 1 and inf 2, so
  // every uint64_t (UINT64_MAX included) is an ordinary key. The tree does
  // no rebalancing (the chromatic tree it stands in for rotates; Ellen's
  // does not), so keys are ordered by their splitmix64 image — a bijection,
  // preserving equality — which keeps the expected depth at O(log n) no
  // matter the insertion order. The YCSB preload is ascending, which would
  // otherwise build a linear path.
  struct Key {
    std::uint64_t k;
    std::uint8_t inf;
  };

  static bool less(Key a, Key b) {
    if (a.inf != b.inf) return a.inf < b.inf;
    return a.inf == 0 && a.k < b.k;
  }

  static bool equal(Key a, Key b) {
    return a.inf == b.inf && (a.inf != 0 || a.k == b.k);
  }

  // Everything allocated is linked onto allocs_ and owned by the
  // destructor; the virtual dtor lets one list hold nodes and Info records.
  struct Tracked {
    Tracked* alloc_next = nullptr;
    virtual ~Tracked() = default;
  };

  struct Node : Tracked {
    const Key key;
    const bool leaf;
    Node(Key k, bool is_leaf) : key(k), leaf(is_leaf) {}
  };

  struct Leaf : Node {
    std::atomic<std::uint64_t> value;
    Leaf(Key k, std::uint64_t v) : Node(k, true), value(v) {}
  };

  struct Internal : Node {
    // Low bits: state; rest: last IInfo* CASed in (kept after the unflag so
    // the word never repeats — see the reclamation note above).
    std::atomic<std::uintptr_t> update{0};
    std::atomic<Node*> left;
    std::atomic<Node*> right;
    Internal(Key k, Node* l, Node* r) : Node(k, false), left(l), right(r) {}
  };

  struct IInfo : Tracked {
    Internal* const parent;
    Node* const old_leaf;
    Internal* const replacement;
    IInfo(Internal* p, Node* l, Internal* r)
        : parent(p), old_leaf(l), replacement(r) {}
  };

  static constexpr std::uintptr_t kClean = 0;
  static constexpr std::uintptr_t kIFlag = 1;
  static constexpr std::uintptr_t kStateMask = 3;

  static std::uintptr_t state_of(std::uintptr_t u) { return u & kStateMask; }
  static IInfo* info_of(std::uintptr_t u) {
    return reinterpret_cast<IInfo*>(u & ~kStateMask);
  }
  static std::uintptr_t pack(IInfo* op, std::uintptr_t state) {
    return reinterpret_cast<std::uintptr_t>(op) | state;
  }

  struct SearchResult {
    Internal* parent;
    std::uintptr_t pupdate;  // parent's update word, read before the child
    Node* leaf;
  };

  SearchResult search(Key key) const {
    Internal* parent = nullptr;
    std::uintptr_t pupdate = 0;
    Node* cur = root_;
    while (!cur->leaf) {
      parent = static_cast<Internal*>(cur);
      pupdate = parent->update.load(std::memory_order_acquire);
      cur = less(key, parent->key)
                ? parent->left.load(std::memory_order_acquire)
                : parent->right.load(std::memory_order_acquire);
    }
    return {parent, pupdate, cur};
  }

  void help(std::uintptr_t u) {
    if (state_of(u) == kIFlag) help_insert(info_of(u));
  }

  void help_insert(IInfo* op) {
    // The old leaf's slot side is fixed by its own key (it lives in that
    // subtree), so helpers need nothing beyond the Info record.
    Internal* p = op->parent;
    std::atomic<Node*>& slot =
        less(op->old_leaf->key, p->key) ? p->left : p->right;
    Node* expected = op->old_leaf;
    slot.compare_exchange_strong(expected, op->replacement,
                                 std::memory_order_acq_rel,
                                 std::memory_order_relaxed);
    std::uintptr_t flagged = pack(op, kIFlag);
    p->update.compare_exchange_strong(flagged, pack(op, kClean),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
  }

  // The list head is sharded by thread so the bookkeeping push is not a
  // cross-thread serialization point on the insert path being measured.
  static constexpr std::size_t kAllocShards = 64;  // power of two

  struct alignas(64) AllocShard {
    std::atomic<Tracked*> head{nullptr};
  };

  template <class T, class... Args>
  T* make(Args&&... args) {
    thread_local const std::size_t slot =
        static_cast<std::size_t>(splitmix64_mix(
            reinterpret_cast<std::uintptr_t>(&slot))) &
        (kAllocShards - 1);
    T* t = new T(static_cast<Args&&>(args)...);
    std::atomic<Tracked*>& head = allocs_[slot].head;
    Tracked* cur = head.load(std::memory_order_relaxed);
    do {
      t->alloc_next = cur;
    } while (!head.compare_exchange_weak(cur, t, std::memory_order_release,
                                         std::memory_order_relaxed));
    return t;
  }

  Internal* root_;
  AllocShard allocs_[kAllocShards];
};

}  // namespace mvcc::baselines
