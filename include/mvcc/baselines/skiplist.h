// Lock-free skiplist baseline for the Figure 7 comparison ("skiplist").
//
// Herlihy–Shavit CAS towers with randomized geometric heights. The YCSB
// mixes bench_fig7 drives are upsert/find only — no deletes — so the
// structure is insert-only: an upsert on a present key updates the node's
// value in place through an atomic, and no node is ever unlinked. That
// removes the need for marking (marks exist to make deletion safe) and
// makes reclamation a pure quiescence scheme: every node stays reachable
// from the head tower until the destructor walks level 0 and frees the
// lot, so the structure is ASan-clean with no epochs or hazard pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "mvcc/common/rng.h"

namespace mvcc::baselines {

class LockFreeSkipList {
 public:
  // Herlihy–Shavit's cap: geometric(1/2) towers serve ~2^32 keys before
  // the top level degenerates into a linear scan (paper scale is 5e7).
  static constexpr int kMaxHeight = 32;

  LockFreeSkipList() : head_(new Node(0, 0, kMaxHeight)) {}

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;

  ~LockFreeSkipList() {
    Node* cur = head_;
    while (cur != nullptr) {
      Node* next = cur->next[0].load(std::memory_order_relaxed);
      delete cur;
      cur = next;
    }
  }

  // Insert-or-replace. Lock-free: a failed level-0 CAS means another thread
  // changed the neighborhood, and the retry either finds the key present
  // (in-place value store) or fresh pred/succ windows.
  void upsert(std::uint64_t key, std::uint64_t value) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    for (;;) {
      if (Node* hit = find_window(key, preds, succs)) {
        hit->value.store(value, std::memory_order_release);
        return;
      }
      const int height = random_height();
      Node* n = new Node(key, value, height);
      for (int lvl = 0; lvl < height; ++lvl) {
        n->next[lvl].store(succs[lvl], std::memory_order_relaxed);
      }
      Node* expected = succs[0];
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, n, std::memory_order_release,
              std::memory_order_relaxed)) {
        delete n;  // never published: safe to free immediately
        continue;
      }
      // Link the upper levels. The node is already in the list (level 0 is
      // the linearization point); each level link retries independently.
      for (int lvl = 1; lvl < height; ++lvl) {
        for (;;) {
          Node* succ = succs[lvl];
          n->next[lvl].store(succ, std::memory_order_relaxed);
          if (preds[lvl]->next[lvl].compare_exchange_strong(
                  succ, n, std::memory_order_release,
                  std::memory_order_relaxed)) {
            break;
          }
          find_window(key, preds, succs);
        }
      }
      return;
    }
  }

  std::optional<std::uint64_t> find(std::uint64_t key) const {
    const Node* pred = head_;
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      const Node* cur = pred->next[lvl].load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = cur->next[lvl].load(std::memory_order_acquire);
      }
      if (cur != nullptr && cur->key == key) {
        return cur->value.load(std::memory_order_acquire);
      }
    }
    return std::nullopt;
  }

 private:
  struct Node {
    const std::uint64_t key;
    std::atomic<std::uint64_t> value;
    const int height;
    std::unique_ptr<std::atomic<Node*>[]> next;

    Node(std::uint64_t k, std::uint64_t v, int h)
        : key(k), value(v), height(h), next(new std::atomic<Node*>[h]) {
      for (int i = 0; i < h; ++i) {
        next[i].store(nullptr, std::memory_order_relaxed);
      }
    }
  };

  // Fills preds/succs with the per-level insertion window for `key` and
  // returns the node holding `key` if one exists (succs[0] in that case).
  Node* find_window(std::uint64_t key, Node** preds, Node** succs) const {
    Node* pred = head_;
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      Node* cur = pred->next[lvl].load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = pred->next[lvl].load(std::memory_order_acquire);
      }
      preds[lvl] = pred;
      succs[lvl] = cur;
    }
    return (succs[0] != nullptr && succs[0]->key == key) ? succs[0] : nullptr;
  }

  // Geometric(1/2) tower height, capped. Per-thread generator seeded from a
  // process-wide counter so threads draw decorrelated streams.
  static int random_height() {
    static std::atomic<std::uint64_t> seed_source{0x51ee7ULL};
    thread_local Xoshiro256 rng(
        splitmix64_mix(seed_source.fetch_add(0x9e3779b97f4a7c15ULL,
                                             std::memory_order_relaxed)));
    int h = 1;
    std::uint64_t bits = rng();
    while (h < kMaxHeight && (bits & 1)) {
      ++h;
      bits >>= 1;
    }
    return h;
  }

  Node* const head_;  // full-height sentinel; its key is never compared
};

}  // namespace mvcc::baselines
