// Copy-on-write tree without batching — the "ours minus batching" ablation
// of Figure 7 ("cow-nobatch", the OpenBW stand-in).
//
// Exactly the repo's functional tree (ftree::FMap), but driven the naive
// way: every upsert takes a writer mutex, builds a fresh version with a
// single-path inserted(), and publishes it by swapping a shared_ptr root.
// Readers pin the current version by copying that shared_ptr under a brief
// shared latch and then traverse entirely outside any lock; a version
// stays alive (and its nodes unreclaimed) exactly while some reader still
// holds the pin, after which the FMap destructor's precise collect frees
// the version's private nodes — so ftree::live_nodes() returns to baseline
// on destruction.
//
// The root swap uses a shared_mutex rather than std::atomic<shared_ptr>:
// libstdc++'s _Sp_atomic unlocks its internal spin bit with a relaxed RMW,
// which leaves the pointer read/write pair unordered in the formal memory
// model and trips TSan (the Baselines CI tier runs under it).
//
// The contrast with the "ours" column is the point: same tree, but one
// root-to-leaf path copied per update and one contended mutex, versus the
// batching front-end's one multi_insert per drained batch.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "mvcc/ftree/fmap.h"

namespace mvcc::baselines {

class CowTreeNoBatch {
 public:
  using Map = ftree::FMap<std::uint64_t, std::uint64_t>;

  CowTreeNoBatch() : root_(std::make_shared<const Map>()) {}

  CowTreeNoBatch(const CowTreeNoBatch&) = delete;
  CowTreeNoBatch& operator=(const CowTreeNoBatch&) = delete;

  void upsert(std::uint64_t key, std::uint64_t value) {
    std::lock_guard<std::mutex> guard(writer_mutex_);
    // No other writer can swap root_ between the pin and the publish, so
    // the new version is built from the latest one.
    std::shared_ptr<const Map> next =
        std::make_shared<const Map>(snapshot()->inserted(key, value));
    std::unique_lock<std::shared_mutex> publish(root_latch_);
    root_ = std::move(next);
  }

  std::optional<std::uint64_t> find(std::uint64_t key) const {
    std::shared_ptr<const Map> snap = snapshot();
    const std::uint64_t* v = snap->find(key);
    if (v == nullptr) return std::nullopt;
    return *v;
  }

  // The current version, pinned; the tree it names is immutable.
  std::shared_ptr<const Map> snapshot() const {
    std::shared_lock<std::shared_mutex> pin(root_latch_);
    return root_;
  }

 private:
  mutable std::shared_mutex root_latch_;
  std::shared_ptr<const Map> root_;
  std::mutex writer_mutex_;
};

}  // namespace mvcc::baselines
