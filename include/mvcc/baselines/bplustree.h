// Lock-coupling B+tree baseline for Figure 7 ("b+tree").
//
// Per-node std::shared_mutex with classic crab latching: readers take
// shared latches parent-then-child and release the parent as soon as the
// child is held; writers take exclusive latches and split any full child
// *before* descending into it (preemptive splits), which guarantees the
// parent always has room for a separator and caps the writer's latch span
// at parent + child + fresh sibling. A shared_mutex guarding the root
// pointer plays the role of the latch "above the root" so root growth is
// just one more crab step.
//
// No deletes (bench_fig7's YCSB mixes are upsert/find), so no merging or
// rebalancing; the destructor frees the tree post-order.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace mvcc::baselines {

class BPlusTree {
 public:
  BPlusTree() : root_(new Node(/*leaf=*/true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  ~BPlusTree() { destroy(root_); }

  void upsert(std::uint64_t key, std::uint64_t value) {
    std::unique_lock<std::shared_mutex> root_guard(root_mutex_);
    Node* cur = root_;
    cur->latch.lock();
    // Check fullness only once the root's latch is held: a writer that
    // crabbed past root_mutex_ earlier may still be splitting a child into
    // the root, so an unlatched read of count races and can go stale.
    if (full(cur)) {
      Node* nr = new Node(/*leaf=*/false);
      nr->child[0] = cur;
      split_child(nr, 0, cur);
      root_ = nr;  // private until root_guard is released; no latch needed
      if (key >= nr->keys[0]) {
        cur->latch.unlock();
        cur = nr->child[1];  // fresh sibling: only we can see it
        cur->latch.lock();
      }
    }
    root_guard.unlock();
    while (!cur->leaf) {
      int idx = route(cur, key);
      Node* child = cur->child[idx];
      child->latch.lock();
      if (full(child)) {
        split_child(cur, idx, child);
        if (key >= cur->keys[idx]) {
          child->latch.unlock();
          child = cur->child[idx + 1];  // fresh sibling: only we can see it
          child->latch.lock();
        }
      }
      cur->latch.unlock();  // child is post-split safe: release the parent
      cur = child;
    }
    leaf_upsert(cur, key, value);
    cur->latch.unlock();
  }

  std::optional<std::uint64_t> find(std::uint64_t key) const {
    std::shared_lock<std::shared_mutex> root_guard(root_mutex_);
    const Node* cur = root_;
    cur->latch.lock_shared();
    root_guard.unlock();
    while (!cur->leaf) {
      const Node* child = cur->child[route(cur, key)];
      child->latch.lock_shared();
      cur->latch.unlock_shared();
      cur = child;
    }
    std::optional<std::uint64_t> out;
    for (int i = 0; i < cur->count; ++i) {
      if (cur->keys[i] == key) {
        out = cur->vals[i];
        break;
      }
    }
    cur->latch.unlock_shared();
    return out;
  }

 private:
  // An internal node holds count separators and count+1 children; child[i]
  // covers keys in [keys[i-1], keys[i]). A leaf holds count key/value pairs.
  static constexpr int kMaxKeys = 31;

  struct Node {
    mutable std::shared_mutex latch;
    const bool leaf;
    int count = 0;
    std::uint64_t keys[kMaxKeys];
    union {
      Node* child[kMaxKeys + 1];
      std::uint64_t vals[kMaxKeys];
    };
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
  };

  static bool full(const Node* n) { return n->count == kMaxKeys; }

  static int route(const Node* n, std::uint64_t key) {
    int i = 0;
    while (i < n->count && key >= n->keys[i]) ++i;
    return i;
  }

  // parent (non-full) and child (full) are exclusively latched by the
  // caller (or private to it, during root growth). Splits child in half and
  // threads the separator + new right sibling into parent at idx.
  static void split_child(Node* parent, int idx, Node* child) {
    Node* right = new Node(child->leaf);
    std::uint64_t separator;
    if (child->leaf) {
      const int keep = child->count / 2;
      right->count = child->count - keep;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = child->keys[keep + i];
        right->vals[i] = child->vals[keep + i];
      }
      child->count = keep;
      separator = right->keys[0];
    } else {
      const int mid = child->count / 2;
      separator = child->keys[mid];
      right->count = child->count - mid - 1;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = child->keys[mid + 1 + i];
      }
      for (int i = 0; i <= right->count; ++i) {
        right->child[i] = child->child[mid + 1 + i];
      }
      child->count = mid;
    }
    for (int i = parent->count; i > idx; --i) {
      parent->keys[i] = parent->keys[i - 1];
      parent->child[i + 1] = parent->child[i];
    }
    parent->keys[idx] = separator;
    parent->child[idx + 1] = right;
    ++parent->count;
  }

  // Leaf is exclusively latched and non-full.
  static void leaf_upsert(Node* leaf, std::uint64_t key, std::uint64_t value) {
    int pos = 0;
    while (pos < leaf->count && leaf->keys[pos] < key) ++pos;
    if (pos < leaf->count && leaf->keys[pos] == key) {
      leaf->vals[pos] = value;
      return;
    }
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->vals[i] = leaf->vals[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->vals[pos] = value;
    ++leaf->count;
  }

  static void destroy(Node* n) {
    if (!n->leaf) {
      for (int i = 0; i <= n->count; ++i) destroy(n->child[i]);
    }
    delete n;
  }

  mutable std::shared_mutex root_mutex_;
  Node* root_;
};

}  // namespace mvcc::baselines
