// YCSB workload generation for the Figure 7 experiment: Zipfian key draws
// over a loaded key space and the standard read/update mixes (A: 50/50,
// B: 95/5, C: 100/0).
//
// The Zipfian sampler is the YCSB/Gray et al. closed form: a ZipfGenerator
// precomputes the harmonic normalizers for a key-space size and skew theta
// (O(n) once, at construction), after which `sample` is O(1) and safe to
// share across threads — each thread draws through its own Xoshiro256, so
// streams are deterministic per seed. YcsbStream scrambles the Zipfian rank
// (YCSB's "scrambled zipfian") so the hot keys are spread across the key
// space instead of clustered at one end of the tree.
//
// Sizes are chosen by the caller, typically `base * env_scale()` (see
// common/env.h), so the same binary runs at laptop and paper scale.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"

namespace mvcc::workload {

// One YCSB mix: the read fraction; the remainder are point updates.
struct YcsbSpec {
  std::string_view name;
  double read_fraction;
};

inline constexpr YcsbSpec kYcsbA{"A", 0.50};
inline constexpr YcsbSpec kYcsbB{"B", 0.95};
inline constexpr YcsbSpec kYcsbC{"C", 1.00};

struct YcsbOp {
  enum Type { kRead, kUpdate };
  Type type;
  std::uint64_t key;
};

// Zipfian ranks over [0, n) with skew `theta` (YCSB default 0.99). The
// normalizers depend only on (n, theta), so one generator serves every
// thread; sampling mutates nothing.
class ZipfGenerator {
 public:
  explicit ZipfGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    assert(n >= 1);
    double zetan = 0, zeta2 = 0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
      if (i == 2) zeta2 = zetan;
    }
    zetan_ = zetan;
    zeta2_ = n_ >= 2 ? zeta2 : zetan;
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t universe() const { return n_; }

  // O(1) draw of a rank in [0, n); rank 0 is the hottest.
  std::uint64_t sample(Xoshiro256& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank < n_ ? rank : n_ - 1;
  }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

// Per-thread deterministic op stream: Zipfian key (rank-scrambled into the
// key space) plus a read/update coin weighted by the spec.
class YcsbStream {
 public:
  YcsbStream(const YcsbSpec& spec, const ZipfGenerator& zipf,
             std::uint64_t seed)
      : spec_(spec), zipf_(&zipf), rng_(seed) {}

  YcsbOp next() {
    const std::uint64_t rank = zipf_->sample(rng_);
    const std::uint64_t key = scramble(rank) % zipf_->universe();
    const YcsbOp::Type type = rng_.next_double() < spec_.read_fraction
                                  ? YcsbOp::kRead
                                  : YcsbOp::kUpdate;
    return {type, key};
  }

 private:
  // Fixed, seed-independent mix so every stream agrees on where rank r
  // lands in the key space.
  static std::uint64_t scramble(std::uint64_t x) {
    return splitmix64_mix(x + 0x9e3779b97f4a7c15ULL);
  }

  YcsbSpec spec_;
  const ZipfGenerator* zipf_;
  Xoshiro256 rng_;
};

// Partitioned op streams — the ScaleStore YCSB_partitioned harness shape.
// The key space [0, keys) is cut into `producers` contiguous equal
// partitions and each producer's stream is PRE-MATERIALIZED over its own
// partition: Zipfian within the partition (every producer sees the same
// local skew) with the rank scrambled inside the partition, so hot keys
// spread across it but never leave it. Cross-producer key conflicts are
// zero by construction and the measured loop pays no generation cost —
// the two properties a multi-writer scale-out bench needs so the driver
// itself cannot become the bottleneck being measured.
//
// Partitions are psize = keys / producers wide; a remainder tail of fewer
// than `producers` keys is loaded but never drawn, keeping one shared
// ZipfGenerator (its normalizers depend on the partition size) exact for
// every producer.
class PartitionedYcsb {
 public:
  PartitionedYcsb(const YcsbSpec& spec, std::uint64_t keys, int producers,
                  double theta = 0.99)
      : spec_(spec),
        keys_(keys),
        producers_(producers),
        psize_(keys / static_cast<std::uint64_t>(producers) > 0
                   ? keys / static_cast<std::uint64_t>(producers)
                   : 1),
        zipf_(psize_, theta) {
    assert(producers >= 1);
    assert(keys >= static_cast<std::uint64_t>(producers));
  }

  std::uint64_t partition_begin(int p) const {
    return static_cast<std::uint64_t>(p) * psize_;
  }
  std::uint64_t partition_end(int p) const {
    return partition_begin(p) + psize_;
  }
  std::uint64_t partition_size() const { return psize_; }

  // Producer p's pre-generated stream of n ops, deterministic per
  // (p, seed): Zipfian rank drawn and scrambled within p's partition, plus
  // the spec's read/update coin.
  std::vector<YcsbOp> stream(int p, std::size_t n,
                             std::uint64_t seed = 0x51cbULL) const {
    assert(p >= 0 && p < producers_);
    std::vector<YcsbOp> out;
    out.reserve(n);
    Xoshiro256 rng(seed + static_cast<std::uint64_t>(p) * 0x9e3779b9ULL);
    const std::uint64_t begin = partition_begin(p);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t rank = zipf_.sample(rng);
      const std::uint64_t key =
          begin + splitmix64_mix(rank + 0x9e3779b97f4a7c15ULL) % psize_;
      const YcsbOp::Type type = rng.next_double() < spec_.read_fraction
                                    ? YcsbOp::kRead
                                    : YcsbOp::kUpdate;
      out.push_back({type, key});
    }
    return out;
  }

 private:
  YcsbSpec spec_;
  std::uint64_t keys_;
  int producers_;
  std::uint64_t psize_;
  ZipfGenerator zipf_;
};

// The load phase: every key in [0, keys) with a deterministic random value,
// ready for FMap::from_entries or a loop of upserts into a baseline.
inline std::vector<std::pair<std::uint64_t, std::uint64_t>> ycsb_dataset(
    std::uint64_t keys, std::uint64_t seed = 0x9c5bULL) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(keys);
  Xoshiro256 rng(seed);
  for (std::uint64_t k = 0; k < keys; ++k) out.emplace_back(k, rng());
  return out;
}

}  // namespace mvcc::workload
