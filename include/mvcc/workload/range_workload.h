// The paper's Table 2 / Figure 6 workload: a single writer commits
// versions of an augmented functional tree while P readers run range-sum
// queries against consistent snapshots, all mediated by a VM algorithm
// from vm/.
//
//   * update granularity nu: the writer acquires the current version,
//     applies nu point inserts (each intermediate version is collected
//     precisely by the FMap destructor), publishes the result with set,
//     and deletes every payload the VM proves unreachable.
//   * query granularity nq: each reader acquires a snapshot, sums a key
//     range expected to span ~nq entries via the tree's augmentation, and
//     releases — deleting whatever the release freed.
//
// The harness reports query/update throughput and the VM's
// max_live_versions high-water mark — the "maximum number of uncollected
// versions" axis of Figure 6. Deterministically seeded via mvcc::Xoshiro256;
// callers scale sizes via env_scale() (see the benches).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/common/timing.h"
#include "mvcc/ftree/fmap.h"
#include "mvcc/vm/base.h"

namespace mvcc::workload {

// One version of the range-sum tree: key -> value with subtree sums.
using RangeSnapshot =
    ftree::FMap<std::uint64_t, std::uint64_t,
                ftree::AugSum<std::uint64_t, std::uint64_t>>;

struct RangeWorkloadConfig {
  int readers = 3;                  // reader processes; the writer is pid 0
  std::uint64_t initial_size = 100000;
  int nq = 10;                      // expected keys per range query
  int nu = 10;                      // point updates per published version
  double duration_sec = 0.4;
  std::uint64_t seed = 0x5eed5eedULL;
};

struct RangeWorkloadResult {
  std::uint64_t queries = 0;  // range queries completed
  std::uint64_t updates = 0;  // point updates applied (nu per version)
  std::uint64_t versions = 0; // versions published
  double elapsed_sec = 0;
  std::int64_t max_live_versions = 0;
  std::uint64_t checksum = 0;  // folded query results; defeats DCE

  double query_mops() const {
    return elapsed_sec > 0 ? static_cast<double>(queries) / elapsed_sec / 1e6
                           : 0.0;
  }
  double update_mops() const {
    return elapsed_sec > 0 ? static_cast<double>(updates) / elapsed_sec / 1e6
                           : 0.0;
  }
};

template <template <class> class VMImpl>
RangeWorkloadResult run_range_workload(const RangeWorkloadConfig& cfg) {
  using VM = VMImpl<RangeSnapshot>;
  static_assert(vm::VersionManagerFor<VM, RangeSnapshot>);

  // Initial tree: keys 0, 2, 4, ... so point updates at random keys split
  // evenly between overwrites and fresh inserts.
  const std::uint64_t n = cfg.initial_size > 0 ? cfg.initial_size : 1;
  const std::uint64_t key_space = 2 * n;
  const std::uint64_t query_span =
      2 * static_cast<std::uint64_t>(cfg.nq > 0 ? cfg.nq : 1);
  std::vector<RangeSnapshot::Entry> entries;
  entries.reserve(n);
  Xoshiro256 init_rng(cfg.seed);
  for (std::uint64_t i = 0; i < n; ++i) {
    entries.emplace_back(2 * i, init_rng.next_below(1000));
  }
  VM vm(cfg.readers + 1, new RangeSnapshot(RangeSnapshot::from_entries(
                             std::move(entries))));

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_queries{0};
  std::atomic<std::uint64_t> total_checksum{0};

  std::vector<std::thread> readers;
  readers.reserve(cfg.readers);
  for (int pid = 1; pid <= cfg.readers; ++pid) {
    readers.emplace_back([&, pid] {
      Xoshiro256 rng(cfg.seed ^ (0x9e3779b9ULL * pid));
      std::uint64_t queries = 0;
      std::uint64_t sum = 0;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        RangeSnapshot* snap = vm.acquire(pid);
        const std::uint64_t lo = rng.next_below(key_space);
        sum += snap->aug_range(lo, lo + query_span);
        for (RangeSnapshot* dead : vm.release(pid)) delete dead;
        ++queries;
      }
      total_queries.fetch_add(queries, std::memory_order_relaxed);
      total_checksum.fetch_add(sum, std::memory_order_relaxed);
    });
  }

  RangeWorkloadResult result;
  Timer timer;
  go.store(true, std::memory_order_release);

  // Writer (pid 0) on this thread: commit versions until the clock runs
  // out, deleting whatever set/release prove unreachable.
  {
    Xoshiro256 rng(cfg.seed ^ 0xabcdef12345ULL);
    while (timer.seconds() < cfg.duration_sec) {
      RangeSnapshot* cur = vm.acquire(0);
      RangeSnapshot next = *cur;  // O(1) snapshot
      for (int i = 0; i < cfg.nu; ++i) {
        next = next.inserted(rng.next_below(key_space),
                             rng.next_below(1000));
      }
      for (RangeSnapshot* dead : vm.set(0, new RangeSnapshot(std::move(next))))
        delete dead;
      for (RangeSnapshot* dead : vm.release(0)) delete dead;
      result.updates += static_cast<std::uint64_t>(cfg.nu);
      ++result.versions;
    }
  }
  stop.store(true, std::memory_order_release);
  // Snapshot the clock at the stop signal, before joining: thread join
  // latency is not part of the measured window, and every counted unit of
  // work (readers exit their loop at the first stop observation, the writer
  // stopped above) completed at most one in-flight query past this instant.
  // Reading the timer after the joins inflated the denominator and
  // under-reported both throughputs.
  result.elapsed_sec = timer.seconds();
  for (std::thread& t : readers) t.join();

  for (RangeSnapshot* dead : vm.shutdown_drain()) delete dead;
  result.queries = total_queries.load(std::memory_order_relaxed);
  result.checksum = total_checksum.load(std::memory_order_relaxed);
  result.max_live_versions = vm.max_live_versions();
  return result;
}

}  // namespace mvcc::workload
