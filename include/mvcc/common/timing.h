// Wall-clock timing for the experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace mvcc {

// Steady-clock stopwatch: starts at construction, `seconds()` /
// `nanos()` read the elapsed time without stopping, `reset()` restarts it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Integer nanoseconds, for latency sampling into atomic accumulators.
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mvcc
