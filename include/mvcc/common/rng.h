// Deterministic fast PRNG for workload generation.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64 so that any
// 64-bit seed — including 0 — yields a well-mixed state. All experiment
// binaries take explicit seeds so runs are reproducible.
#pragma once

#include <cstdint>

namespace mvcc {

// The splitmix64 finalizer: a fixed, well-mixed 64->64 bijection. Used to
// expand seeds into PRNG state and wherever a cheap stateless scramble of
// a counter or rank is needed (e.g. the YCSB key scrambler).
inline std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 stream: guarantees a nonzero, decorrelated state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = splitmix64_mix(x);
    }
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform draw from [0, bound) via Lemire's multiply-shift; bound must be
  // nonzero. Slightly biased for bounds near 2^64, which no workload uses.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace mvcc
