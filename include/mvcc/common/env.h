// Environment-variable knobs shared by every experiment binary.
//
// The paper's harnesses are parameterised by machine scale; rather than a
// flag library we use a tiny set of env knobs so the same binary runs on a
// laptop (defaults) and on the paper's 72-core machine (MVCC_* overrides):
//
//   MVCC_SCALE    multiplier applied to structure sizes        (default 1.0)
//   MVCC_SECONDS  wall-clock budget per measured cell, seconds (default 0.4)
//   MVCC_READERS  reader-thread count for the Table 2 harness  (default 3)
//   MVCC_THREADS  worker-thread count for batch/bulk ops       (default hw)
//   MVCC_WARMUP_SECONDS  steady-state warm-up before each measured
//                 duration-based bench cell                    (default 0.1)
//   MVCC_STATS    1 enables the obs/ metrics layer (see obs/obs.h);
//                 unset/0 keeps instrumentation disabled       (default 0)
//   MVCC_SAMPLE_MS  footprint sampler period, ms; 0 disables the sampler
//                 thread entirely (see obs/sampler.h)          (default 0)
//   MVCC_SAMPLE_OUT path the benches write the footprint CSV to
//                 when the sampler ran             (default footprint.csv)
//   MVCC_TRACE    output path for the Chrome-trace event dump; unset
//                 disables tracing (see obs/trace.h)        (default off)
//   MVCC_PERF     1 opens perf_event hardware counters per bench cell
//                 (see obs/perf.h; silent no-op where the syscall is
//                 unavailable)                                 (default 0)
//   MVCC_GRAIN    fork-join grain for the bulk tree ops: a recursive
//                 subproblem below this many nodes stays sequential
//                 (see ftree/ops.h bulk_grain)              (default 2048)
//   MVCC_BG_RECLAIM  1 routes the exact freed sets VM operations return
//                 to the exec/ pool's background lane instead of freeing
//                 inline (see vm/base.h reclaim_payloads)      (default 0)
//   MVCC_ALLOC    node/tuple allocation policy: "slab" routes fixed-size
//                 blocks through the alloc/ magazine pool, "malloc" keeps
//                 plain operator new/delete for A/B comparison
//                 (see alloc/pool.h)                      (default "slab")
//   MVCC_SLAB_BYTES  bytes per slab the alloc/ pool carves blocks from,
//                 clamped to [4096, 16MiB]                 (default 65536)
//   MVCC_SHARDS   shard count for the sharded multi-writer front-end
//                 (txn/sharded.h): the key space is hash-partitioned
//                 across this many independent BatchingMap shards, each
//                 with its own flattener and version manager. Clamped to
//                 [1, 256]; latched at the first ShardedMap construction
//                 (like MVCC_ALLOC's route latch) so a reload_config()
//                 mid-process cannot leave two maps disagreeing about the
//                 shard topology the sharded/* metrics are keyed by
//                                                              (default 1)
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace mvcc {

// Reads a long from the environment; returns `def` when unset or malformed.
inline long env_long(const char* name, long def) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return (end == nullptr || *end != '\0') ? def : v;
}

// Reads a double from the environment; returns `def` when unset or malformed.
inline double env_double(const char* name, double def) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return (end == nullptr || *end != '\0') ? def : v;
}

// Reads a string from the environment; returns `def` when unset.
inline std::string env_string(const char* name, const char* def = "") {
  const char* s = std::getenv(name);
  return std::string(s != nullptr ? s : def);
}

// Smallest fork-join grain the bulk tree ops accept: below this, the spawn
// cost per subproblem exceeds the node-visit work by orders of magnitude
// and fork-join degrades into per-node task spam.
inline constexpr long kGrainFloor = 64;

namespace detail {

inline double parse_scale() { return env_double("MVCC_SCALE", 1.0); }

// MVCC_GRAIN with the guard rails: non-positive or malformed values fall
// back to the default (a grain of 0 would fork single-node subproblems),
// and positive-but-absurd values clamp to kGrainFloor — silently accepting
// e.g. MVCC_GRAIN=1 used to turn every bulk op into spawn-bound sludge.
// The clamp logs once per process under MVCC_STATS=1 so a grain sweep
// that walked off the edge is visible rather than mysteriously flat.
inline long parse_grain() {
  const long v = env_long("MVCC_GRAIN", 2048);
  if (v <= 0) return 2048;
  if (v < kGrainFloor) {
    static std::atomic<bool> warned{false};
    if (env_long("MVCC_STATS", 0) != 0 &&
        !warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "[mvcc] MVCC_GRAIN=%ld would fork near-single-node "
                   "subproblems; clamped to %ld\n",
                   v, kGrainFloor);
    }
    return kGrainFloor;
  }
  return v;
}

inline int parse_threads() {
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  const long v = env_long("MVCC_THREADS", hw > 0 ? hw : 1);
  return static_cast<int>(v > 0 ? v : 1);
}

// MVCC_ALLOC: any value other than "malloc" selects the slab pool, so a
// typo fails toward the default policy instead of silently changing it.
inline bool parse_alloc_pooled() {
  return env_string("MVCC_ALLOC", "slab") != "malloc";
}

inline std::size_t parse_slab_bytes() {
  const long v = env_long("MVCC_SLAB_BYTES", 1L << 16);
  const long lo = 1L << 12;
  const long hi = 1L << 24;
  return static_cast<std::size_t>(v < lo ? lo : (v > hi ? hi : v));
}

// MVCC_SHARDS clamped to [1, 256]: a shard is a whole flattener thread plus
// a version manager, so counts beyond a few hundred are a misconfiguration,
// not a scale-up.
inline int parse_shards() {
  const long v = env_long("MVCC_SHARDS", 1);
  return static_cast<int>(v < 1 ? 1 : (v > 256 ? 256 : v));
}

}  // namespace detail

// --- Consolidated runtime configuration ------------------------------------
//
// Every tuning knob used to be its own free function re-reading the
// environment; each new knob added another global. Config gathers the
// process-wide ones into one struct, seeded from the environment on first
// use of config() and test-overridable: either mutate config() fields
// directly, or setenv + reload_config(). Library code reads config() (one
// cached struct, no getenv on hot paths); the env_threads()/env_grain()/
// env_scale() free functions below survive as thin deprecated wrappers
// that keep their historical re-read-every-call semantics.
struct Config {
  double scale = 1.0;              // MVCC_SCALE
  int threads = 1;                 // MVCC_THREADS (floored at 1)
  long grain = 2048;               // MVCC_GRAIN (clamped to kGrainFloor)
  bool alloc_pooled = true;        // MVCC_ALLOC ("slab" | "malloc")
  std::size_t slab_bytes = 65536;  // MVCC_SLAB_BYTES
  int shards = 1;                  // MVCC_SHARDS (clamped to [1, 256])

  // Scales a base structure size by `scale`; never returns less than 1 for
  // a positive base, so the result is always a usable element count.
  long scaled(long base) const {
    const long v = static_cast<long>(static_cast<double>(base) * scale);
    return (base > 0 && v < 1) ? 1 : v;
  }

  static Config from_env() {
    Config c;
    c.scale = detail::parse_scale();
    c.threads = detail::parse_threads();
    c.grain = detail::parse_grain();
    c.alloc_pooled = detail::parse_alloc_pooled();
    c.slab_bytes = detail::parse_slab_bytes();
    c.shards = detail::parse_shards();
    return c;
  }
};

// The process-wide configuration, seeded from the environment on first
// call. Set overriding env vars before the first library use (or call
// reload_config()); note that some consumers resolve their policy once —
// e.g. the allocation route (alloc/pool.h) and bulk_grain (ftree/ops.h)
// latch at first use so a mid-run flip cannot mismatch allocate/free pairs.
inline Config& config() {
  static Config c = Config::from_env();
  return c;
}

// Re-seeds config() from the current environment (for tests that setenv).
inline void reload_config() { config() = Config::from_env(); }

// --- Deprecated thin wrappers ----------------------------------------------
// Pre-Config call sites read these; they re-read the environment every call
// (the historical contract some tests rely on). New code: use config().

// The raw MVCC_SCALE multiplier (default 1.0). Deprecated: config().scale.
inline double env_scale() { return detail::parse_scale(); }

// Scales a base structure size by MVCC_SCALE. Deprecated: config().scaled.
inline long env_scale(long base) {
  Config c;
  c.scale = detail::parse_scale();
  return c.scaled(base);
}

// Fork-join grain for the bulk tree operations (MVCC_GRAIN). Deprecated:
// config().grain.
inline long env_grain() { return detail::parse_grain(); }

// Worker-thread count for bulk operations (MVCC_THREADS overrides
// hardware). Deprecated: config().threads.
inline int env_threads() { return detail::parse_threads(); }

}  // namespace mvcc
