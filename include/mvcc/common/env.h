// Environment-variable knobs shared by every experiment binary.
//
// The paper's harnesses are parameterised by machine scale; rather than a
// flag library we use a tiny set of env knobs so the same binary runs on a
// laptop (defaults) and on the paper's 72-core machine (MVCC_* overrides):
//
//   MVCC_SCALE    multiplier applied to structure sizes        (default 1.0)
//   MVCC_SECONDS  wall-clock budget per measured cell, seconds (default 0.4)
//   MVCC_READERS  reader-thread count for the Table 2 harness  (default 3)
//   MVCC_THREADS  worker-thread count for batch/bulk ops       (default hw)
//   MVCC_WARMUP_SECONDS  steady-state warm-up before each measured
//                 duration-based bench cell                    (default 0.1)
//   MVCC_STATS    1 enables the obs/ metrics layer (see obs/obs.h);
//                 unset/0 keeps instrumentation disabled       (default 0)
//   MVCC_SAMPLE_MS  footprint sampler period, ms; 0 disables the sampler
//                 thread entirely (see obs/sampler.h)          (default 0)
//   MVCC_SAMPLE_OUT path the benches write the footprint CSV to
//                 when the sampler ran             (default footprint.csv)
//   MVCC_TRACE    output path for the Chrome-trace event dump; unset
//                 disables tracing (see obs/trace.h)        (default off)
//   MVCC_PERF     1 opens perf_event hardware counters per bench cell
//                 (see obs/perf.h; silent no-op where the syscall is
//                 unavailable)                                 (default 0)
//   MVCC_GRAIN    fork-join grain for the bulk tree ops: a recursive
//                 subproblem below this many nodes stays sequential
//                 (see ftree/ops.h bulk_grain)              (default 2048)
//   MVCC_BG_RECLAIM  1 routes the exact freed sets VM operations return
//                 to the exec/ pool's background lane instead of freeing
//                 inline (see vm/base.h reclaim_payloads)      (default 0)
#pragma once

#include <cstdlib>
#include <string>
#include <thread>

namespace mvcc {

// Reads a long from the environment; returns `def` when unset or malformed.
inline long env_long(const char* name, long def) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return (end == nullptr || *end != '\0') ? def : v;
}

// Reads a double from the environment; returns `def` when unset or malformed.
inline double env_double(const char* name, double def) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return def;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return (end == nullptr || *end != '\0') ? def : v;
}

// Reads a string from the environment; returns `def` when unset.
inline std::string env_string(const char* name, const char* def = "") {
  const char* s = std::getenv(name);
  return std::string(s != nullptr ? s : def);
}

// The raw MVCC_SCALE multiplier (default 1.0). Benches that compute their
// own sizes multiply by this; use env_scale(base) when a ready-made element
// count is wanted.
inline double env_scale() { return env_double("MVCC_SCALE", 1.0); }

// Scales a base structure size by MVCC_SCALE. Never returns less than 1 for
// a positive base, so `env_scale(n)` is always a usable element count.
inline long env_scale(long base) {
  const double scaled = static_cast<double>(base) * env_double("MVCC_SCALE", 1.0);
  const long v = static_cast<long>(scaled);
  return (base > 0 && v < 1) ? 1 : v;
}

// Fork-join grain for the bulk tree operations (MVCC_GRAIN): subproblems
// below this many nodes of work stay sequential, so grain sweeps need no
// recompile. Non-positive or malformed values fall back to the default —
// a grain of 0 would fork single-node subproblems and drown in spawn cost.
inline long env_grain() {
  const long v = env_long("MVCC_GRAIN", 2048);
  return v > 0 ? v : 2048;
}

// Worker-thread count for bulk operations (MVCC_THREADS overrides hardware).
inline int env_threads() {
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  const long v = env_long("MVCC_THREADS", hw > 0 ? hw : 1);
  return static_cast<int>(v > 0 ? v : 1);
}

}  // namespace mvcc
