// Tests for the txn/ batched multi-writer front-end and the YCSB workload
// generator: commit semantics (sync tickets, flush drains, last-write-wins
// dedup), snapshot isolation of read transactions, batch-bound accounting,
// multi-producer/multi-reader stress, and zero node leakage after every
// teardown. Every suite name starts with "Txn" so CI's TSan job can select
// this concurrency tier alongside Vm with `ctest -R 'Vm|Txn'`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/base.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/workload/ycsb.h"

namespace {

using namespace mvcc;

using PswfMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                 ftree::NoAug<std::uint64_t, std::uint64_t>,
                                 vm::PswfVersionManager>;
using PslfMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                 ftree::NoAug<std::uint64_t, std::uint64_t>,
                                 vm::PslfVersionManager>;
using BaseMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                 ftree::NoAug<std::uint64_t, std::uint64_t>,
                                 vm::BaseVersionManager>;

// ---------------------------------------------------------------------------
// Batching semantics.

TEST(TxnBatching, UpsertSyncIsVisibleOnReturn) {
  const long long base_live = ftree::live_nodes();
  {
    PswfMap map(1, {});
    for (std::uint64_t i = 0; i < 100; ++i) {
      map.upsert_sync(0, i, i * 10);
      auto v = map.get(0, i);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i * 10);
    }
    EXPECT_EQ(map.ops_committed(), 100u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, FlushAllDrainsEverySubmission) {
  const long long base_live = ftree::live_nodes();
  {
    PswfMap map(2, {}, /*buffer_capacity=*/1 << 10, /*max_batch=*/64);
    for (std::uint64_t i = 0; i < 500; ++i) {
      map.submit(0, txn::BatchOp::kUpsert, i, i);
    }
    for (std::uint64_t i = 400; i < 900; ++i) {
      map.submit(1, txn::BatchOp::kUpsert, i, i + 7);
    }
    map.flush_all();
    auto txn = map.read_txn(0);
    EXPECT_EQ(txn.map().size(), 900u);
    // Keys 400-499 are written by both producers; their winner depends on
    // drain interleaving, so only the disjoint ranges assert values.
    for (std::uint64_t i = 0; i < 400; ++i) {
      ASSERT_NE(txn->find(i), nullptr);
      EXPECT_EQ(*txn->find(i), i);
    }
    for (std::uint64_t i = 500; i < 900; ++i) {
      ASSERT_NE(txn->find(i), nullptr);
      EXPECT_EQ(*txn->find(i), i + 7);
    }
    EXPECT_EQ(map.ops_committed(), 1000u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, LastWriteWinsWithinProducer) {
  const long long base_live = ftree::live_nodes();
  {
    PswfMap map(1, {}, 1 << 10, /*max_batch=*/1 << 12);
    // All updates to the same key land in one batch: dedup must keep the
    // latest submission, matching a loop of point inserts.
    for (std::uint64_t i = 0; i <= 300; ++i) {
      map.submit(0, txn::BatchOp::kUpsert, 42, i);
    }
    map.flush_all();
    auto v = map.get(0, 42);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 300u);
    EXPECT_EQ(map.ops_committed(), 301u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, ReadTxnIsAFrozenSnapshot) {
  const long long base_live = ftree::live_nodes();
  {
    PswfMap map(1, PswfMap::Map::from_entries({{1, 1}, {2, 2}}));
    auto before = map.read_txn(0);
    map.upsert_sync(0, 3, 3);
    map.upsert_sync(0, 1, 99);
    // The snapshot still reads the version it pinned...
    EXPECT_EQ(before.map().size(), 2u);
    EXPECT_EQ(*before->find(1), 1u);
    EXPECT_EQ(before->find(3), nullptr);
    // ...while new transactions see the commits.
    auto after = map.read_txn(0);
    EXPECT_EQ(after.map().size(), 3u);
    EXPECT_EQ(*after->find(1), 99u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, SnapshotOutlivesTheMap) {
  const long long base_live = ftree::live_nodes();
  {
    PswfMap::ReadTxn* held = nullptr;
    {
      PswfMap map(1, PswfMap::Map::from_entries({{7, 70}, {8, 80}}));
      held = new PswfMap::ReadTxn(map.read_txn(0));
    }  // manager destroyed; the snapshot owns its nodes by refcount
    EXPECT_EQ(held->map().size(), 2u);
    EXPECT_EQ(*held->map().find(7), 70u);
    delete held;
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, RespectsMaxBatchBound) {
  const long long base_live = ftree::live_nodes();
  {
    PswfMap map(1, {}, 1 << 10, /*max_batch=*/8);
    for (std::uint64_t i = 0; i < 256; ++i) {
      map.submit(0, txn::BatchOp::kUpsert, i, i);
    }
    map.flush_all();
    EXPECT_EQ(map.ops_committed(), 256u);
    // No published version may fold in more than max_batch ops.
    EXPECT_GE(map.batches_committed(), 256u / 8);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, InitialMapIsServedBeforeAnyCommit) {
  const long long base_live = ftree::live_nodes();
  {
    auto dataset = workload::ycsb_dataset(1000);
    PswfMap map(2, PswfMap::Map::from_entries(std::move(dataset)), 1 << 14);
    auto txn = map.read_txn(1);
    EXPECT_EQ(txn.map().size(), 1000u);
    auto v = map.get(0, 999);
    EXPECT_TRUE(v.has_value());
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// The GC-off ablation (Figure 7 "ours" column) runs the same front-end
// over the leak-list Base VM; everything still comes back at teardown.
TEST(TxnBatching, BaseVmVariantCommitsAndDrains) {
  const long long base_live = ftree::live_nodes();
  {
    BaseMap map(1, {}, 1 << 10, 16);
    for (std::uint64_t i = 0; i < 200; ++i) {
      map.submit(0, txn::BatchOp::kUpsert, i % 50, i);
    }
    map.flush_all();
    auto v = map.get(0, 49);
    ASSERT_TRUE(v.has_value());
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan targets).

TEST(TxnBatching, MultiProducerDisjointKeysAllCommit) {
  const long long base_live = ftree::live_nodes();
  {
    constexpr int kProducers = 4;
    constexpr std::uint64_t kPerProducer = 4000;
    PswfMap map(kProducers, {}, 1 << 12, 256);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          // Disjoint key stripes; the final value per key is its last write.
          const std::uint64_t k =
              static_cast<std::uint64_t>(p) + kProducers * (i % 1000);
          if (i % 64 == 63) {
            map.upsert_sync(p, k, i);
          } else {
            map.submit(p, txn::BatchOp::kUpsert, k, i);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    map.flush_all();
    EXPECT_EQ(map.ops_committed(),
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
    auto txn = map.read_txn(0);
    EXPECT_EQ(txn.map().size(), kProducers * 1000u);
    for (int p = 0; p < kProducers; ++p) {
      for (std::uint64_t s = 0; s < 1000; ++s) {
        const std::uint64_t k = static_cast<std::uint64_t>(p) + kProducers * s;
        const std::uint64_t* v = txn->find(k);
        ASSERT_NE(v, nullptr);
        // Last write to stripe s by producer p has i = 3000 + s.
        EXPECT_EQ(*v, 3000 + s);
      }
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

template <class M>
void run_producers_vs_readers_stress() {
  const long long base_live = ftree::live_nodes();
  {
    constexpr int kProducers = 3;
    M map(kProducers, M::Map::from_entries(workload::ycsb_dataset(2000)),
          1 << 12, 128);
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int p = 1; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        Xoshiro256 rng(static_cast<std::uint64_t>(p) * 77 + 1);
        std::uint64_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
          if (i % 97 == 96) {
            map.upsert_sync(p, rng.next_below(4000), i);
          } else {
            map.submit(p, txn::BatchOp::kUpsert, rng.next_below(4000), i);
          }
          ++i;
        }
      });
    }
    // Reader on slot 0 (no producer uses it concurrently): point reads and
    // snapshot scans must always see a consistent committed version.
    threads.emplace_back([&] {
      Xoshiro256 rng(5);
      for (int i = 0; i < 300; ++i) {
        auto v = map.get(0, rng.next_below(4000));
        (void)v;
        auto txn = map.read_txn(0);
        EXPECT_GE(txn.map().size(), 2000u);
      }
      stop.store(true, std::memory_order_release);
    });
    for (auto& t : threads) t.join();
    map.flush_all();
    EXPECT_GT(map.batches_committed(), 0u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(TxnBatching, ProducersVsReadersStressPswf) {
  run_producers_vs_readers_stress<PswfMap>();
}

TEST(TxnBatching, ProducersVsReadersStressPslf) {
  run_producers_vs_readers_stress<PslfMap>();
}

// Nested-map payloads under the batching front-end: V owns another FMap,
// so precise collect reenters itself on the flattener thread while it
// frees superseded versions — the reentrancy bug's original trigger.
TEST(TxnBatching, NestedMapPayloadsCollectPrecisely) {
  const long long base_live = ftree::live_nodes();
  {
    struct Inner {
      ftree::FMap<std::uint64_t, std::uint64_t> m;
    };
    using NMap = txn::BatchingMap<std::uint64_t, Inner,
                                  ftree::NoAug<std::uint64_t, Inner>,
                                  vm::PswfVersionManager>;
    NMap map(1, {}, 1 << 8, 16);
    ftree::FMap<std::uint64_t, std::uint64_t> proto;
    for (std::uint64_t j = 0; j < 32; ++j) proto = proto.inserted(j, j);
    for (std::uint64_t i = 0; i < 400; ++i) {
      map.submit(0, txn::BatchOp::kUpsert, i % 40,
                 Inner{proto.inserted(i, i)});
    }
    map.flush_all();
    auto txn = map.read_txn(0);
    EXPECT_EQ(txn.map().size(), 40u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// ---------------------------------------------------------------------------
// YCSB generator.

TEST(TxnYcsb, ZipfRanksInRangeAndSkewed) {
  const std::uint64_t n = 1000;
  workload::ZipfGenerator zipf(n, 0.99);
  Xoshiro256 rng(42);
  constexpr int kSamples = 50000;
  std::vector<std::uint64_t> counts(n, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t r = zipf.sample(rng);
    ASSERT_LT(r, n);
    ++counts[r];
  }
  // Rank 0 is far above the uniform expectation under theta=0.99 skew.
  EXPECT_GT(counts[0], 10u * kSamples / n);
  // And the head dominates: the top 10 ranks carry well over a quarter.
  std::uint64_t head = 0;
  for (int r = 0; r < 10; ++r) head += counts[r];
  EXPECT_GT(head, kSamples / 4u);
}

TEST(TxnYcsb, StreamsAreDeterministicPerSeed) {
  workload::ZipfGenerator zipf(500, 0.99);
  workload::YcsbStream a(workload::kYcsbA, zipf, 7);
  workload::YcsbStream b(workload::kYcsbA, zipf, 7);
  workload::YcsbStream c(workload::kYcsbA, zipf, 8);
  bool any_difference = false;
  for (int i = 0; i < 1000; ++i) {
    const auto oa = a.next();
    const auto ob = b.next();
    const auto oc = c.next();
    EXPECT_EQ(oa.key, ob.key);
    EXPECT_EQ(oa.type, ob.type);
    any_difference |= (oa.key != oc.key || oa.type != oc.type);
  }
  EXPECT_TRUE(any_difference);  // distinct seeds give distinct streams
}

TEST(TxnYcsb, MixesMatchTheirSpecs) {
  workload::ZipfGenerator zipf(1000, 0.99);
  for (const auto& spec :
       {workload::kYcsbA, workload::kYcsbB, workload::kYcsbC}) {
    workload::YcsbStream stream(spec, zipf, 99);
    constexpr int kOps = 20000;
    int reads = 0;
    for (int i = 0; i < kOps; ++i) {
      const auto op = stream.next();
      reads += op.type == workload::YcsbOp::kRead;
      ASSERT_LT(op.key, 1000u);
    }
    const double frac = static_cast<double>(reads) / kOps;
    EXPECT_NEAR(frac, spec.read_fraction, 0.02)
        << "workload " << spec.name << " read mix off";
  }
}

// ---------------------------------------------------------------------------
// Deferred (background) reclamation: MVCC_BG_RECLAIM routes the exact
// freed sets off the flattener's critical path (vm/base.h); these tests
// pin the precision guarantees (live_nodes back to baseline after the
// destructor's quiesce, even with the lane backed up at shutdown) and the
// latency win the mode exists for.

// Scoped override of the reclaim mode; restores the inline default so the
// suites around these stay in the mode they were written for.
struct BgReclaimGuard {
  explicit BgReclaimGuard(bool on) { vm::set_bg_reclaim(on); }
  ~BgReclaimGuard() { vm::set_bg_reclaim(false); }
};

TEST(TxnReclaim, DeferredFreesDrainToBaselineAtTeardown) {
  const long long base_live = ftree::live_nodes();
  {
    BgReclaimGuard bg(true);
    PswfMap map(2, {}, /*buffer_capacity=*/1 << 10, /*max_batch=*/64);
    for (std::uint64_t i = 0; i < 2000; ++i) {
      map.submit(static_cast<int>(i % 2), txn::BatchOp::kUpsert, i % 512, i);
      if (i % 97 == 0) {
        // Reader releases route through the background lane too.
        (void)map.get(static_cast<int>(i % 2), i % 512);
      }
    }
    map.flush_all();
  }
  // ~BatchingMap quiesced the lane: every deferred batch has been freed.
  EXPECT_EQ(ftree::live_nodes(), base_live);
  EXPECT_EQ(vm::reclaim_queue_depth().load(), 0);
}

TEST(TxnReclaim, ShutdownWithBackedUpLaneDoesNotLeak) {
  const long long base_live = ftree::live_nodes();
  {
    BgReclaimGuard bg(true);
    // max_batch=1 maximizes retirements: nearly every commit publishes a
    // deferred batch, so the lane is still backed up when the destructor
    // runs (no flush, no explicit quiesce — teardown must drain it; the
    // ASan tier turns any miss into a leak report).
    PswfMap map(1, {}, /*buffer_capacity=*/1 << 10, /*max_batch=*/1);
    for (std::uint64_t i = 0; i < 1500; ++i) {
      map.submit(0, txn::BatchOp::kUpsert, i % 1024, i);
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
  EXPECT_EQ(vm::reclaim_queue_depth().load(), 0);
}

TEST(TxnReclaim, ReadsStayCorrectWhileReclaimRunsBehind) {
  const long long base_live = ftree::live_nodes();
  {
    BgReclaimGuard bg(true);
    PswfMap map(2, {}, /*buffer_capacity=*/1 << 10, /*max_batch=*/32);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto v = map.get(1, 7);
        if (v.has_value()) {
          // The writer only ever raises key 7's value; a read below a
          // previously seen one would mean a torn or recycled version.
          EXPECT_GE(*v, last);
          last = *v;
        }
        auto txn = map.read_txn(1);
        EXPECT_LE(txn.map().size(), 257u);
      }
    });
    for (std::uint64_t i = 1; i <= 1200; ++i) {
      map.upsert_sync(0, 7, i);
      map.submit(0, txn::BatchOp::kUpsert, i % 256 + 100, i);
    }
    stop.store(true, std::memory_order_release);
    reader.join();
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Retired-value payload with a deliberately expensive last-reference
// destructor. shared_ptr copies (ring slots, path-copied tree nodes) cost
// nothing; only the final release — which happens when a retirement sweep
// frees the last tree node holding the value — pays the sleep. That gives
// the inline sweep a scheduler-independent cost floor of (overwrites per
// batch) * kRetireCost, far above timing noise, instead of asking two
// allocator-bound runs to out-race each other.
struct SlowToFree {
  static constexpr std::chrono::microseconds kRetireCost{100};
  ~SlowToFree() { std::this_thread::sleep_for(kRetireCost); }
};

// p99 submit-to-visible latency of upsert_sync under heavy-destructor
// payloads: inline reclaim pays every retirement on the commit path the
// sync waiter is parked on; deferred reclaim publishes it to the
// background lane in O(1).
double p99_sync_commit_us(bool bg_reclaim) {
  using Slow = std::shared_ptr<SlowToFree>;
  using NMap = txn::BatchingMap<std::uint64_t, Slow,
                                ftree::NoAug<std::uint64_t, Slow>,
                                vm::PswfVersionManager>;
  // Keys recycle every 4 rounds (512 ops) while the 256-slot ring drops
  // its value copy after 256 ops, so by the time a key is overwritten the
  // retired version holds the LAST reference and the sweep runs the
  // destructor. A ring deeper than the recycle distance would keep values
  // alive past retirement and hide the very cost this test measures.
  constexpr int kWarmRounds = 6;  // recycling starts on round 4
  constexpr int kMeasuredRounds = 32;
  constexpr std::uint64_t kOpsPerRound = 128;
  constexpr std::uint64_t kKeySpace = 512;
  BgReclaimGuard bg(bg_reclaim);
  obs::LatencyHistogram lat;
  NMap map(1, {}, /*buffer_capacity=*/256, /*max_batch=*/256);
  std::uint64_t key = 0;
  for (int r = 0; r < kWarmRounds + kMeasuredRounds; ++r) {
    for (std::uint64_t i = 0; i + 1 < kOpsPerRound; ++i, ++key) {
      map.submit(0, txn::BatchOp::kUpsert, key % kKeySpace,
                 std::make_shared<SlowToFree>());
    }
    // The submit burst above took microseconds; in inline mode the
    // flattener cannot have swept this round's ~127 retirements yet (each
    // sleeps kRetireCost), so this wait provably includes most of them.
    Timer t;
    map.upsert_sync(0, key % kKeySpace, Slow{});
    ++key;
    if (r >= kWarmRounds) lat.record(t.nanos());
  }
  map.flush_all();
  return lat.quantile(0.99) / 1000.0;
}

TEST(ReclaimLatency, SyncCommitP99DoesNotInheritRetirementFrees) {
  const long long base_live = ftree::live_nodes();
  const double inline_p99_us = p99_sync_commit_us(false);
  const double bg_p99_us = p99_sync_commit_us(true);
  RecordProperty("inline_p99_us", static_cast<int>(inline_p99_us));
  RecordProperty("bg_p99_us", static_cast<int>(bg_p99_us));
  // Inline mode's p99 has a hard floor of several milliseconds (a round's
  // worth of kRetireCost destructor sleeps on the commit path); deferred
  // mode's p99 is ordinary commit latency, orders of magnitude below it.
  EXPECT_GT(inline_p99_us, 1000.0)
      << "workload no longer puts retirement frees on the sync path";
  EXPECT_LT(bg_p99_us, inline_p99_us)
      << "inline p99 " << inline_p99_us << "us vs bg p99 " << bg_p99_us
      << "us";
  // Both modes stay precise: everything freed once both maps are gone.
  EXPECT_EQ(ftree::live_nodes(), base_live);
  EXPECT_EQ(vm::reclaim_queue_depth().load(), 0);
}

TEST(TxnYcsb, DatasetIsDeterministicAndCoversKeySpace) {
  const auto d1 = workload::ycsb_dataset(1000);
  const auto d2 = workload::ycsb_dataset(1000);
  ASSERT_EQ(d1.size(), 1000u);
  EXPECT_EQ(d1, d2);
  for (std::uint64_t k = 0; k < d1.size(); ++k) EXPECT_EQ(d1[k].first, k);
  const long long base_live = ftree::live_nodes();
  {
    auto m = PswfMap::Map::from_entries(workload::ycsb_dataset(1000));
    EXPECT_EQ(m.size(), 1000u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

}  // namespace
