// Baselines tier: the five Figure-7 comparison structures behind
// mvcc/baselines/ — oracle equivalence against std::map, concurrent
// upsert/find stress (readers during writer bursts), linearizability
// spot-checks, and leak accounting. Suite names start with "Baselines" so
// the TSan CI tier's `-R 'Vm|Txn|Baselines'` filter picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "mvcc/baselines/bplustree.h"
#include "mvcc/baselines/cow_nobatch.h"
#include "mvcc/baselines/extbst.h"
#include "mvcc/baselines/sharded_hash.h"
#include "mvcc/baselines/skiplist.h"
#include "mvcc/common/rng.h"
#include "mvcc/ftree/ops.h"

namespace {

using namespace mvcc;

using Structures =
    ::testing::Types<baselines::LockFreeSkipList, baselines::ExternalBst,
                     baselines::BPlusTree, baselines::ShardedHashMap,
                     baselines::CowTreeNoBatch>;

struct StructureNames {
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, baselines::LockFreeSkipList>) return "SkipList";
    if (std::is_same_v<T, baselines::ExternalBst>) return "ExternalBst";
    if (std::is_same_v<T, baselines::BPlusTree>) return "BPlusTree";
    if (std::is_same_v<T, baselines::ShardedHashMap>) return "ShardedHash";
    return "CowTreeNoBatch";
  }
};

template <class T>
class BaselinesOracle : public ::testing::Test {};
TYPED_TEST_SUITE(BaselinesOracle, Structures, StructureNames);

template <class T>
class BaselinesStress : public ::testing::Test {};
TYPED_TEST_SUITE(BaselinesStress, Structures, StructureNames);

TYPED_TEST(BaselinesOracle, EmptyFindsNothing) {
  TypeParam m;
  EXPECT_FALSE(m.find(0).has_value());
  EXPECT_FALSE(m.find(12345).has_value());
  EXPECT_FALSE(m.find(~std::uint64_t{0}).has_value());
}

TYPED_TEST(BaselinesOracle, SingleKeyReadYourWrite) {
  TypeParam m;
  m.upsert(7, 70);
  ASSERT_TRUE(m.find(7).has_value());
  EXPECT_EQ(*m.find(7), 70u);
  m.upsert(7, 71);  // in-place replace, not a duplicate entry
  EXPECT_EQ(*m.find(7), 71u);
  EXPECT_FALSE(m.find(8).has_value());
}

// A small dense keyspace forces heavy duplicate-key traffic (the in-place
// update paths) while the oracle keeps the ground truth.
TYPED_TEST(BaselinesOracle, MatchesStdMapOnRandomUpserts) {
  TypeParam m;
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(2048);
    const std::uint64_t v = rng();
    m.upsert(k, v);
    oracle[k] = v;
    if (i % 512 == 0) {
      const std::uint64_t probe = rng.next_below(4096);
      auto got = m.find(probe);
      auto it = oracle.find(probe);
      if (it == oracle.end()) {
        EXPECT_FALSE(got.has_value()) << "probe " << probe;
      } else {
        ASSERT_TRUE(got.has_value()) << "probe " << probe;
        EXPECT_EQ(*got, it->second) << "probe " << probe;
      }
    }
  }
  for (const auto& [k, v] : oracle) {
    auto got = m.find(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, v) << "key " << k;
  }
  for (std::uint64_t k = 2048; k < 2148; ++k) {
    EXPECT_FALSE(m.find(k).has_value()) << "key " << k;
  }
}

// Ascending bulk load drives the worst-case split/tower patterns (every
// B+tree insert hits the rightmost leaf; the BST degenerates to a path).
TYPED_TEST(BaselinesOracle, AscendingBulkThenPointLookups) {
  TypeParam m;
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t k = 0; k < kN; ++k) m.upsert(k, k * 3);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto got = m.find(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, k * 3) << "key " << k;
  }
  EXPECT_FALSE(m.find(kN).has_value());
}

// UINT64_MAX must behave as an ordinary key (the external BST keeps its
// infinity sentinels out of band; the skiplist head never compares).
TYPED_TEST(BaselinesOracle, ExtremeKeys) {
  TypeParam m;
  const std::uint64_t hi = ~std::uint64_t{0};
  m.upsert(0, 1);
  m.upsert(hi, 2);
  m.upsert(hi - 1, 3);
  EXPECT_EQ(*m.find(0), 1u);
  EXPECT_EQ(*m.find(hi), 2u);
  EXPECT_EQ(*m.find(hi - 1), 3u);
  m.upsert(hi, 20);
  EXPECT_EQ(*m.find(hi), 20u);
  EXPECT_FALSE(m.find(hi - 2).has_value());
}

// Writers own disjoint ranges, readers probe throughout; every observed
// value must be one the owning writer actually wrote, and after the join
// every key must hold its owner's final value.
TYPED_TEST(BaselinesStress, DisjointWritersWithConcurrentReaders) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kPerWriter = 2000;
  constexpr std::uint64_t kSpan = kWriters * kPerWriter;
  const auto scratch = [](std::uint64_t k) { return k ^ 0xdeadbeefULL; };
  const auto final_v = [](std::uint64_t k) { return k * 2 + 1; };

  TypeParam m;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Xoshiro256 rng(900 + static_cast<std::uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t k = rng.next_below(kSpan);
        auto got = m.find(k);
        if (got.has_value() && *got != scratch(k) && *got != final_v(k)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::uint64_t lo = w * kPerWriter;
      for (std::uint64_t k = lo; k < lo + kPerWriter; ++k) {
        m.upsert(k, scratch(k));
      }
      for (std::uint64_t k = lo; k < lo + kPerWriter; ++k) {
        m.upsert(k, final_v(k));
      }
    });
  }
  for (int i = kReaders; i < kReaders + kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  for (int i = 0; i < kReaders; ++i) threads[i].join();

  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t k = 0; k < kSpan; ++k) {
    auto got = m.find(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, final_v(k)) << "key " << k;
  }
}

// Overlapping writers race on the same dense keyspace (the contended
// insert paths: skiplist CAS losses, BST flag helping, B+tree split
// races). Any value ever observed must decode to a write some thread made.
TYPED_TEST(BaselinesStress, OverlappingWritersValidValuesOnly) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kKeys = 512;
  constexpr std::uint64_t kOpsPerWriter = 6000;
  const auto encode = [](int w, std::uint64_t i) {
    return (static_cast<std::uint64_t>(w) << 32) | i;
  };

  TypeParam m;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(w));
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        m.upsert(rng.next_below(kKeys), encode(w, i));
      }
    });
  }
  for (auto& t : threads) t.join();

  int present = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    auto got = m.find(k);
    if (!got.has_value()) continue;
    ++present;
    const auto w = *got >> 32;
    const auto i = *got & 0xffffffffULL;
    EXPECT_LT(w, static_cast<std::uint64_t>(kWriters)) << "key " << k;
    EXPECT_LT(i, kOpsPerWriter) << "key " << k;
  }
  // 24k draws over 512 keys: every key is hit with overwhelming odds.
  EXPECT_EQ(present, static_cast<int>(kKeys));
}

// Linearizability spot-check: a single writer storing an increasing
// counter is an atomic register, so no reader may ever observe the value
// going backwards.
TYPED_TEST(BaselinesStress, SingleWriterMonotonicReads) {
  constexpr std::uint64_t kWrites = 20000;
  constexpr int kReaders = 3;
  constexpr std::uint64_t kKey = 42;

  TypeParam m;
  std::atomic<bool> done{false};
  std::atomic<int> regressions{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto got = m.find(kKey);
        const std::uint64_t v = got.has_value() ? *got : 0;
        if (v < last) regressions.fetch_add(1, std::memory_order_relaxed);
        last = v;
      }
    });
  }
  for (std::uint64_t v = 1; v <= kWrites; ++v) m.upsert(kKey, v);
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(regressions.load(), 0);
  EXPECT_EQ(*m.find(kKey), kWrites);
}

// Regression for a B+tree root race: the root-fullness check must happen
// under the root node's latch, not just root_mutex_, or a writer already
// past the root can split a child into it between check and descent and
// the stale not-full verdict later overflows the node. Root growth only
// happens a handful of times per tree, so hammer many fresh trees through
// their growth windows with all writers in flight from key one.
TYPED_TEST(BaselinesStress, ConcurrentWritersThroughRootGrowth) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 1500;
  for (int round = 0; round < 8; ++round) {
    TypeParam m;
    std::atomic<int> start{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        start.fetch_add(1);
        while (start.load() < kWriters) {  // maximize overlap at tree birth
        }
        Xoshiro256 rng(9000 + static_cast<std::uint64_t>(round) * kWriters +
                       static_cast<std::uint64_t>(w));
        for (int i = 0; i < kPerWriter; ++i) {
          const std::uint64_t key = rng();  // spread keys: splits everywhere
          m.upsert(key, key ^ 0xabcd);
          if ((i & 63) == 0) {
            auto got = m.find(key);
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, key ^ 0xabcd);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    // Replay one writer's stream: every key must be present and intact.
    Xoshiro256 replay(9000 + static_cast<std::uint64_t>(round) * kWriters);
    for (int i = 0; i < kPerWriter; ++i) {
      const std::uint64_t key = replay();
      auto got = m.find(key);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, key ^ 0xabcd);
    }
  }
}

// Destruction after multi-threaded churn must free every allocation —
// meaningful under the ASan job, where any leaked node/tower/Info record
// fails the binary.
TYPED_TEST(BaselinesStress, DestructionAfterConcurrentChurnIsClean) {
  for (int round = 0; round < 3; ++round) {
    TypeParam m;
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
      threads.emplace_back([&, w] {
        Xoshiro256 rng(500 + static_cast<std::uint64_t>(w));
        for (int i = 0; i < 3000; ++i) {
          m.upsert(rng.next_below(256), rng());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
}

// The CoW ablation reuses ftree, whose global node accounting lets us
// assert the precise-GC property directly: after the map (and every
// pinned snapshot) dies, not a single tree node survives.
TEST(BaselinesMemory, CowNoBatchFreesEveryFtreeNode) {
  const long long base = ftree::live_nodes();
  {
    baselines::CowTreeNoBatch m;
    for (std::uint64_t k = 0; k < 2000; ++k) m.upsert(k, k);
    auto pinned = m.snapshot();  // survives later upserts
    for (std::uint64_t k = 0; k < 500; ++k) m.upsert(k, k + 1);
    EXPECT_EQ(*pinned->find(0), 0u);   // snapshot isolation
    EXPECT_EQ(*m.find(0), 1u);         // current version moved on
    EXPECT_GT(ftree::live_nodes(), base);
  }
  EXPECT_EQ(ftree::live_nodes(), base);
}

TEST(BaselinesMemory, CowNoBatchSnapshotOutlivesMap) {
  const long long base = ftree::live_nodes();
  std::shared_ptr<const baselines::CowTreeNoBatch::Map> pinned;
  {
    baselines::CowTreeNoBatch m;
    for (std::uint64_t k = 0; k < 300; ++k) m.upsert(k, k * 7);
    pinned = m.snapshot();
  }
  EXPECT_EQ(*pinned->find(299), 299u * 7);
  EXPECT_GT(ftree::live_nodes(), base);
  pinned.reset();
  EXPECT_EQ(ftree::live_nodes(), base);
}

}  // namespace
