// Tests for the sharded multi-writer front-end (txn/sharded.h): key
// routing, per-shard commit accounting, the cross-shard snapshot protocol
// (version vectors never observe a torn multi-shard commit), atomic
// multi_upsert_sync spanning shards, the MVCC_SHARDS latch, and the
// partitioned YCSB driver. Every suite name starts with "Sharded" so CI's
// TSan job selects this tier with -R '...|Sharded'; the stress tests are
// the ones that must be TSan-clean. Every test checks ftree::live_nodes()
// returns to baseline after teardown — per-shard precise freed-set
// accounting must survive the scale-out.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/common/env.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/sharded.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/workload/ycsb.h"

namespace {

using namespace mvcc;

using PswfSharded = txn::ShardedMap<std::uint64_t, std::uint64_t,
                                    ftree::NoAug<std::uint64_t, std::uint64_t>,
                                    vm::PswfVersionManager>;
using PslfSharded = txn::ShardedMap<std::uint64_t, std::uint64_t,
                                    ftree::NoAug<std::uint64_t, std::uint64_t>,
                                    vm::PslfVersionManager>;
using Entry = PswfSharded::Entry;

// First `n` keys whose shard assignments (under `nshards`) are pairwise
// distinct — the raw material of every cross-shard test.
std::vector<std::uint64_t> keys_in_distinct_shards(std::size_t nshards,
                                                   std::size_t n) {
  std::vector<std::uint64_t> keys;
  std::vector<bool> used(nshards, false);
  for (std::uint64_t k = 0; keys.size() < n; ++k) {
    const std::size_t s = PswfSharded::shard_index(k, nshards);
    if (!used[s]) {
      used[s] = true;
      keys.push_back(k);
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Routing and basic semantics.

TEST(ShardedRouting, DeterministicAndReasonablySpread) {
  const std::size_t nshards = 4;
  std::vector<std::uint64_t> per_shard(nshards, 0);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    const std::size_t s = PswfSharded::shard_index(k, nshards);
    ASSERT_LT(s, nshards);
    EXPECT_EQ(s, PswfSharded::shard_index(k, nshards));  // stable
    ++per_shard[s];
  }
  // splitmix64 mixing: dense keys spread near-uniformly; 15% floor is far
  // below the binomial expectation but far above any routing bug.
  for (std::size_t s = 0; s < nshards; ++s) {
    EXPECT_GT(per_shard[s], 1500u) << "shard " << s << " starved";
  }
}

TEST(ShardedBasics, UpsertSyncVisibleAcrossShards) {
  const long long base_live = ftree::live_nodes();
  {
    PswfSharded map(1, {}, /*shards=*/4);
    EXPECT_EQ(map.shard_count(), 4);
    for (std::uint64_t k = 0; k < 200; ++k) {
      map.upsert_sync(0, k, k * 3);
      auto v = map.get(0, k);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, k * 3);
    }
    EXPECT_EQ(map.ops_committed(), 200u);
    // 200 dense keys over 4 shards: every shard must have committed some.
    for (int s = 0; s < 4; ++s) {
      EXPECT_GT(map.shard_ops_committed(s), 0u) << "shard " << s;
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(ShardedBasics, InitialDatasetIsPartitionedAndReadable) {
  const long long base_live = ftree::live_nodes();
  {
    auto dataset = workload::ycsb_dataset(500);
    const auto expect = dataset;  // keep a copy: ctor consumes it
    PswfSharded map(2, std::move(dataset), /*shards=*/3);
    for (const auto& [k, v] : expect) {
      auto got = map.get(0, k);
      ASSERT_TRUE(got.has_value()) << "key " << k;
      EXPECT_EQ(*got, v);
    }
    auto snap = map.snapshot(1);
    EXPECT_EQ(snap.size(), 500u);
    EXPECT_EQ(snap.shards(), 3u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(ShardedBasics, FlushAllDrainsEveryShard) {
  const long long base_live = ftree::live_nodes();
  {
    PslfSharded map(2, {}, /*shards=*/4, /*buffer_capacity=*/1 << 10,
                    /*max_batch=*/64);
    for (std::uint64_t k = 0; k < 600; ++k) {
      map.submit(0, txn::BatchOp::kUpsert, k, k);
    }
    for (std::uint64_t k = 600; k < 1000; ++k) {
      map.submit(1, txn::BatchOp::kUpsert, k, k);
    }
    map.flush_all();
    EXPECT_EQ(map.ops_committed(), 1000u);
    auto snap = map.snapshot(0);
    EXPECT_EQ(snap.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
      const std::uint64_t* v = snap.find(k);
      ASSERT_NE(v, nullptr) << "key " << k;
      EXPECT_EQ(*v, k);
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(ShardedSnapshot, SnapshotIsFrozenAcrossLaterCommits) {
  const long long base_live = ftree::live_nodes();
  {
    PswfSharded map(1, {}, /*shards=*/2);
    map.upsert_sync(0, 1, 10);
    map.upsert_sync(0, 2, 20);
    auto before = map.snapshot(0);
    map.upsert_sync(0, 1, 99);
    map.upsert_sync(0, 3, 30);
    ASSERT_NE(before.find(1), nullptr);
    EXPECT_EQ(*before.find(1), 10u);
    EXPECT_EQ(before.find(3), nullptr);
    auto after = map.snapshot(0);
    EXPECT_EQ(*after.find(1), 99u);
    EXPECT_EQ(*after.find(3), 30u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// ---------------------------------------------------------------------------
// Cross-shard atomicity.

TEST(ShardedMulti, LastWriteWinsWithinOneMultiOp) {
  const long long base_live = ftree::live_nodes();
  {
    PswfSharded map(1, {}, /*shards=*/4);
    map.multi_upsert_sync(
        0, std::vector<Entry>{{7, 1}, {8, 2}, {7, 3}});  // 7 written twice
    auto v7 = map.get(0, 7);
    auto v8 = map.get(0, 8);
    ASSERT_TRUE(v7.has_value());
    ASSERT_TRUE(v8.has_value());
    EXPECT_EQ(*v7, 3u);  // later entry wins
    EXPECT_EQ(*v8, 2u);
    map.multi_upsert_sync(0, std::vector<Entry>{});  // empty: no-op
    EXPECT_EQ(map.ops_committed(), 3u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// The two-shard atomic-commit test the ROADMAP asks for: a multi-key
// commit spanning two shards is all-or-nothing from every concurrent
// snapshot's view.
TEST(ShardedMulti, TwoShardCommitIsAllOrNothingUnderSnapshots) {
  const long long base_live = ftree::live_nodes();
  {
    const auto keys = keys_in_distinct_shards(2, 2);
    const std::uint64_t ka = keys[0], kb = keys[1];
    PswfSharded map(2, {}, /*shards=*/2);
    ASSERT_NE(map.shard_of(ka), map.shard_of(kb));

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      for (std::uint64_t i = 1; i <= 400; ++i) {
        map.multi_upsert_sync(
            0, std::vector<Entry>{{ka, i}, {kb, i}});
      }
      stop.store(true, std::memory_order_release);
    });
    std::uint64_t observed = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto snap = map.snapshot(1);
      const std::uint64_t* va = snap.find(ka);
      const std::uint64_t* vb = snap.find(kb);
      // All-or-nothing: both absent (before the first commit) or both
      // present with the SAME value — a torn commit would differ.
      if (va == nullptr) {
        EXPECT_EQ(vb, nullptr);
      } else {
        ASSERT_NE(vb, nullptr);
        EXPECT_EQ(*va, *vb);
        EXPECT_GE(*va, observed);  // writer's values are monotone
        observed = *va;
      }
    }
    writer.join();
    auto snap = map.snapshot(1);
    ASSERT_NE(snap.find(ka), nullptr);
    EXPECT_EQ(*snap.find(ka), 400u);
    EXPECT_EQ(*snap.find(kb), 400u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Snapshot-consistency stress: multiple writers commit 4-key rows (one key
// per shard) whose invariant is "all four values equal", while a
// single-shard writer churns unrelated keys and readers take version
// vectors continuously. No reader may ever observe a torn row. This is the
// TSan centerpiece of the tier.
TEST(ShardedStress, SnapshotsNeverObserveTornMultiShardCommits) {
  const long long base_live = ftree::live_nodes();
  {
    constexpr int kShards = 4;
    constexpr int kWriters = 2;
    constexpr int kReaders = 2;
    constexpr std::uint64_t kRounds = 150;
    // Producer indices: writers 0..1, churn 2, readers 3..4.
    PswfSharded map(kWriters + 1 + kReaders, {}, kShards,
                    /*buffer_capacity=*/1 << 10, /*max_batch=*/128);
    // Writer w owns a disjoint 4-key row spanning all 4 shards: row keys
    // are drawn from disjoint ranges so the rows never collide.
    std::vector<std::vector<std::uint64_t>> rows;
    for (int w = 0; w < kWriters; ++w) {
      std::vector<std::uint64_t> row;
      std::vector<bool> used(kShards, false);
      for (std::uint64_t k = static_cast<std::uint64_t>(w) * 1000000;
           row.size() < static_cast<std::size_t>(kShards); ++k) {
        const std::size_t s = PswfSharded::shard_index(k, kShards);
        if (!used[s]) {
          used[s] = true;
          row.push_back(k);
        }
      }
      rows.push_back(std::move(row));
    }

    std::atomic<int> writers_done{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (std::uint64_t i = 1; i <= kRounds; ++i) {
          std::vector<Entry> ops;
          for (std::uint64_t k : rows[static_cast<std::size_t>(w)]) {
            ops.emplace_back(k, i);
          }
          map.multi_upsert_sync(w, ops);
        }
        writers_done.fetch_add(1, std::memory_order_acq_rel);
      });
    }
    // Single-shard churn on keys far from every row, concurrent with the
    // multi commits: must neither block them nor perturb snapshots.
    threads.emplace_back([&] {
      std::uint64_t i = 0;
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        map.upsert_sync(kWriters, 5000000 + (i % 64), i);
        ++i;
      }
    });
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        const int pid = kWriters + 1 + r;
        while (writers_done.load(std::memory_order_acquire) < kWriters) {
          auto snap = map.snapshot(pid);
          for (const auto& row : rows) {
            const std::uint64_t* v0 = snap.find(row[0]);
            for (std::size_t j = 1; j < row.size(); ++j) {
              const std::uint64_t* vj = snap.find(row[j]);
              if (v0 == nullptr) {
                EXPECT_EQ(vj, nullptr) << "torn: row head absent, key "
                                       << row[j] << " present";
              } else {
                ASSERT_NE(vj, nullptr) << "torn: row head present, key "
                                       << row[j] << " absent";
                EXPECT_EQ(*v0, *vj) << "torn multi-shard commit observed";
              }
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    map.flush_all();
    auto snap = map.snapshot(0);
    for (const auto& row : rows) {
      for (std::uint64_t k : row) {
        ASSERT_NE(snap.find(k), nullptr);
        EXPECT_EQ(*snap.find(k), kRounds);
      }
    }
    // The protocol ran: snapshots were taken; retries are workload-
    // dependent (possibly zero) but the counter must be readable.
    EXPECT_GT(map.snapshots_taken(), 0u);
    (void)map.snapshot_retries();
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// ---------------------------------------------------------------------------
// Metrics. Compiled out with the record sites under -DMVCC_STATS=OFF —
// there is no registry content to assert on in that configuration.
#if !defined(MVCC_STATS_DISABLED)

TEST(ShardedMetrics, RegistryExportsPerShardAndSnapshotCounters) {
  const long long base_live = ftree::live_nodes();
  obs::set_enabled(true);
  {
    PswfSharded map(1, {}, /*shards=*/2);
    for (std::uint64_t k = 0; k < 50; ++k) map.upsert_sync(0, k, k);
    (void)map.snapshot(0);
    (void)map.snapshot(0);
    map.multi_upsert_sync(0, std::vector<Entry>{{1, 1}, {2, 2}});
    map.flush_all();
    EXPECT_EQ(map.snapshots_taken(), 2u);
    const std::string dump = obs::registry().dump_text("");
    for (const char* key :
         {"sharded/shard0/ops=", "sharded/shard1/ops=",
          "sharded/shard0/batches=", "sharded/snapshots=",
          "sharded/snapshot_retries=", "sharded/multi_commits=",
          "sharded/multi_ops="}) {
      EXPECT_NE(dump.find(key), std::string::npos) << "missing " << key;
    }
  }
  obs::set_enabled(false);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

#endif  // !MVCC_STATS_DISABLED

// ---------------------------------------------------------------------------
// The MVCC_SHARDS latch (satellite: reload_config must not let the shard
// topology mismatch mid-process).

TEST(ShardedConfig, ShardCountLatchesAtFirstDefaultConstruction) {
  const long long base_live = ftree::live_nodes();
  ASSERT_EQ(setenv("MVCC_SHARDS", "3", 1), 0);
  reload_config();
  EXPECT_EQ(config().shards, 3);
  {
    PswfSharded first(1);  // shards=0: sizes from config, latches 3
    EXPECT_EQ(first.shard_count(), 3);
    EXPECT_EQ(txn::latched_shard_count(), 3);

    // A reload after the latch changes config() but NOT the latched count:
    // new default-sized maps keep the first topology.
    ASSERT_EQ(setenv("MVCC_SHARDS", "7", 1), 0);
    reload_config();
    EXPECT_EQ(config().shards, 7);
    EXPECT_EQ(txn::latched_shard_count(), 3);
    PswfSharded second(1);
    EXPECT_EQ(second.shard_count(), 3);

    // Explicit counts bypass the latch without disturbing it.
    PswfSharded forced(1, {}, /*shards=*/5);
    EXPECT_EQ(forced.shard_count(), 5);
    EXPECT_EQ(txn::latched_shard_count(), 3);
  }
  ASSERT_EQ(unsetenv("MVCC_SHARDS"), 0);
  reload_config();
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// ---------------------------------------------------------------------------
// Partitioned YCSB driver.

TEST(ShardedYcsb, PartitionedStreamsStayInTheirPartition) {
  workload::PartitionedYcsb part(workload::kYcsbA, 1000, 4);
  EXPECT_EQ(part.partition_size(), 250u);
  for (int p = 0; p < 4; ++p) {
    const auto ops = part.stream(p, 2000);
    ASSERT_EQ(ops.size(), 2000u);
    for (const auto& op : ops) {
      EXPECT_GE(op.key, part.partition_begin(p));
      EXPECT_LT(op.key, part.partition_end(p));
    }
  }
}

TEST(ShardedYcsb, PartitionedStreamsAreDeterministicPerSeed) {
  workload::PartitionedYcsb part(workload::kYcsbB, 4096, 2);
  const auto a = part.stream(0, 500, 42);
  const auto b = part.stream(0, 500, 42);
  const auto c = part.stream(0, 500, 43);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool any_diff_seed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal = all_equal && a[i].key == b[i].key && a[i].type == b[i].type;
    any_diff_seed = any_diff_seed || a[i].key != c[i].key;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(ShardedYcsb, PartitionedMixMatchesSpec) {
  workload::PartitionedYcsb part(workload::kYcsbA, 10000, 2);
  int reads = 0;
  const auto ops = part.stream(1, 10000);
  for (const auto& op : ops) reads += op.type == workload::YcsbOp::kRead;
  // YCSB A is 50/50; 10k draws stay within a few sigma of 5000.
  EXPECT_GT(reads, 4500);
  EXPECT_LT(reads, 5500);
}

}  // namespace
