// Tests for the vm/ versioned-map subsystem: per-algorithm semantics, the
// precise freed sets of PSWF/PSLF, the characteristic live-version bounds
// of each reclamation scheme (HP's 2P, RCU's 1, EP's stalled-reader
// blow-up), and multi-threaded stress proving no version is ever freed
// while a reader holds it. Every suite name starts with "Vm" so CI's TSan
// job can select the concurrency tier with `ctest -R Vm`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "mvcc/common/timing.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/vm/base.h"
#include "mvcc/vm/ep.h"
#include "mvcc/vm/hp.h"
#include "mvcc/vm/ibr.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"
#include "mvcc/vm/rcu.h"
#include "mvcc/workload/range_workload.h"

namespace {

using namespace mvcc::vm;

struct Payload {
  int id;
};

static_assert(VersionManagerFor<BaseVersionManager<Payload>, Payload>);
static_assert(VersionManagerFor<PswfVersionManager<Payload>, Payload>);
static_assert(VersionManagerFor<PslfVersionManager<Payload>, Payload>);
static_assert(VersionManagerFor<HpVersionManager<Payload>, Payload>);
static_assert(VersionManagerFor<EpVersionManager<Payload>, Payload>);
static_assert(VersionManagerFor<IbrVersionManager<Payload>, Payload>);
static_assert(VersionManagerFor<RcuVersionManager<Payload>, Payload>);

// ---------------------------------------------------------------------------
// Semantics shared by every algorithm.

template <class VM>
class VmBasics : public ::testing::Test {};

using AllVms =
    ::testing::Types<BaseVersionManager<Payload>, PswfVersionManager<Payload>,
                     PslfVersionManager<Payload>, HpVersionManager<Payload>,
                     EpVersionManager<Payload>, IbrVersionManager<Payload>,
                     RcuVersionManager<Payload>>;
TYPED_TEST_SUITE(VmBasics, AllVms);

TYPED_TEST(VmBasics, AcquireSeesTheLatestSet) {
  Payload a{0}, b{1}, c{2};
  TypeParam vm(2, &a);
  EXPECT_EQ(vm.acquire(0), &a);
  for (Payload* dead : vm.release(0)) (void)dead;

  vm.acquire(0);
  vm.set(0, &b);
  vm.release(0);
  EXPECT_EQ(vm.acquire(0), &b);
  vm.release(0);

  vm.acquire(0);
  vm.set(0, &c);
  vm.release(0);
  EXPECT_EQ(vm.acquire(0), &c);
  vm.release(0);
  (void)vm.shutdown_drain();
}

// Every payload handed to the manager comes back exactly once — through
// set, release, or the final drain — and the live counter returns to zero.
TYPED_TEST(VmBasics, EveryVersionReturnedExactlyOnce) {
  constexpr int kVersions = 64;
  std::vector<Payload> payloads(kVersions + 1);
  for (int i = 0; i <= kVersions; ++i) payloads[i].id = i;

  TypeParam vm(3, &payloads[0]);
  std::multiset<Payload*> returned;
  for (int i = 1; i <= kVersions; ++i) {
    vm.acquire(0);
    for (Payload* dead : vm.set(0, &payloads[i])) returned.insert(dead);
    for (Payload* dead : vm.release(0)) returned.insert(dead);
  }
  for (Payload* dead : vm.shutdown_drain()) returned.insert(dead);

  EXPECT_EQ(returned.size(), static_cast<std::size_t>(kVersions + 1));
  for (int i = 0; i <= kVersions; ++i) {
    EXPECT_EQ(returned.count(&payloads[i]), 1u) << "version " << i;
  }
  EXPECT_EQ(vm.live_versions(), 0);
}

TYPED_TEST(VmBasics, DrainReturnsInitialWhenUntouched) {
  Payload a{0};
  TypeParam vm(1, &a);
  std::vector<Payload*> out = vm.shutdown_drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &a);
  EXPECT_EQ(vm.live_versions(), 0);
}

// ---------------------------------------------------------------------------
// Precision: PSWF and PSLF free exactly the versions that became
// unreachable, at the operation that unreached them.

template <class VM>
class VmPrecise : public ::testing::Test {};

using PreciseVms =
    ::testing::Types<PswfVersionManager<Payload>, PslfVersionManager<Payload>>;
TYPED_TEST_SUITE(VmPrecise, PreciseVms);

TYPED_TEST(VmPrecise, ReleaseFreesExactlyTheUnreachableVersion) {
  Payload a{0}, b{1};
  TypeParam vm(3, &a);

  ASSERT_EQ(vm.acquire(0), &a);  // reader pins A
  ASSERT_EQ(vm.acquire(2), &a);  // writer pins A
  // A is superseded but held by 0 and 2: nothing may be freed yet.
  EXPECT_TRUE(vm.set(2, &b).empty());
  EXPECT_EQ(vm.live_versions(), 1);
  // Writer lets go; the reader still holds A.
  EXPECT_TRUE(vm.release(2).empty());
  EXPECT_EQ(vm.live_versions(), 1);
  // The last holder's release frees exactly {A}, immediately.
  std::vector<Payload*> freed = vm.release(0);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], &a);
  EXPECT_EQ(vm.live_versions(), 0);
  (void)vm.shutdown_drain();
}

TYPED_TEST(VmPrecise, WriterSelfHoldIsClaimedOnItsOwnRelease) {
  Payload a{0}, b{1};
  TypeParam vm(2, &a);
  ASSERT_EQ(vm.acquire(0), &a);
  EXPECT_TRUE(vm.set(0, &b).empty());  // A still pinned by the writer itself
  std::vector<Payload*> freed = vm.release(0);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], &a);
  (void)vm.shutdown_drain();
}

TYPED_TEST(VmPrecise, SetFreesAVersionNoOneHolds) {
  Payload a{0}, b{1}, c{2};
  TypeParam vm(2, &a);
  // First cycle pins A, so A frees on release; B is then current and
  // unheld, so the next set's sweep frees it right away.
  vm.acquire(1);
  vm.set(1, &b);
  vm.release(1);
  std::vector<Payload*> freed = vm.set(1, &c);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], &b);
  (void)vm.shutdown_drain();
}

// A reader parked on one old version does not stop precise collection of
// everything committed after it: uncollected versions stay O(P) while EP
// (below) grows without bound.
TYPED_TEST(VmPrecise, SlowReaderPinsOnlyItsOwnVersion) {
  constexpr int kCycles = 1000;
  std::vector<Payload> payloads(kCycles + 1);
  TypeParam vm(3, &payloads[0]);

  ASSERT_EQ(vm.acquire(0), &payloads[0]);  // stalls holding version 0
  for (int i = 1; i <= kCycles; ++i) {
    vm.acquire(2);
    vm.set(2, &payloads[i]);
    vm.release(2);
    EXPECT_LE(vm.live_versions(), 3) << "cycle " << i;
  }
  EXPECT_LE(vm.max_live_versions(), 3);
  std::vector<Payload*> freed = vm.release(0);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], &payloads[0]);
  (void)vm.shutdown_drain();
}

// ---------------------------------------------------------------------------
// Characteristic bounds of the baselines.

TEST(VmHpBound, LiveVersionsNeverExceedTwoP) {
  constexpr int kP = 4;
  constexpr int kCycles = 200;
  std::vector<Payload> payloads(kCycles + 1);
  HpVersionManager<Payload> vm(kP, &payloads[0]);
  for (int i = 1; i <= kCycles; ++i) {
    vm.acquire(0);
    vm.set(0, &payloads[i]);
    vm.release(0);
    EXPECT_LE(vm.live_versions(), 2 * kP);
  }
  EXPECT_LE(vm.max_live_versions(), 2 * kP);
  // Amortization really batches: the retired list fills to the threshold.
  EXPECT_GE(vm.max_live_versions(), kP);
  (void)vm.shutdown_drain();
}

TEST(VmRcuBound, PinsUncollectedVersionsAtOne) {
  constexpr int kCycles = 100;
  std::vector<Payload> payloads(kCycles + 1);
  RcuVersionManager<Payload> vm(4, &payloads[0]);
  for (int i = 1; i <= kCycles; ++i) {
    vm.acquire(0);
    // The writer holds the replaced version itself, so set defers it...
    EXPECT_TRUE(vm.set(0, &payloads[i]).empty());
    // ...and its release frees it immediately: at most one uncollected.
    std::vector<Payload*> freed = vm.release(0);
    ASSERT_EQ(freed.size(), 1u);
    EXPECT_EQ(freed[0], &payloads[i - 1]);
    EXPECT_EQ(vm.live_versions(), 0);
  }
  EXPECT_EQ(vm.max_live_versions(), 1);
  (void)vm.shutdown_drain();
}

TEST(VmEpBound, StalledReaderBlocksAllReclamation) {
  constexpr int kCycles = 500;
  std::vector<Payload> payloads(kCycles + 1);
  EpVersionManager<Payload> vm(3, &payloads[0]);

  ASSERT_EQ(vm.acquire(0), &payloads[0]);  // stalls at epoch 0
  for (int i = 1; i <= kCycles; ++i) {
    vm.acquire(2);
    EXPECT_TRUE(vm.set(2, &payloads[i]).empty());  // nothing ever frees
    vm.release(2);
  }
  EXPECT_EQ(vm.live_versions(), kCycles);  // the Figure 6 blow-up
  // Once the stalled reader leaves, the next set reclaims the backlog.
  vm.release(0);
  vm.acquire(2);
  Payload extra{-1};
  EXPECT_GE(vm.set(2, &extra).size(), static_cast<std::size_t>(kCycles));
  vm.release(2);
  (void)vm.shutdown_drain();
}

TEST(VmIbrBound, StalledReaderBlocksOnlyOverlappingLifetimes) {
  constexpr int kP = 3;
  constexpr int kCycles = 500;
  std::vector<Payload> payloads(kCycles + 1);
  IbrVersionManager<Payload> vm(kP, &payloads[0]);

  ASSERT_EQ(vm.acquire(0), &payloads[0]);  // frozen interval at era 0
  for (int i = 1; i <= kCycles; ++i) {
    vm.acquire(2);
    vm.set(2, &payloads[i]);
    vm.release(2);
  }
  // Versions born after the stalled interval keep getting reclaimed.
  EXPECT_LE(vm.max_live_versions(), 2 * kP + 1);
  vm.release(0);
  (void)vm.shutdown_drain();
}

// ---------------------------------------------------------------------------
// Multi-threaded stress: readers continuously validate the version they
// hold while a writer commits and frees as fast as it can. A version freed
// while held shows up as a magic-check failure (and as a use-after-free
// under ASan, or a race under TSan).

constexpr std::uint64_t kMagic = 0xfeedfacecafef00dULL;

struct StressPayload {
  std::atomic<std::uint64_t> magic{kMagic};
};

void check_and_delete(StressPayload* dead) {
  ASSERT_EQ(dead->magic.load(std::memory_order_acquire), kMagic)
      << "freed a version twice (or freed a corrupted version)";
  dead->magic.store(0xdeaddeaddeaddeadULL, std::memory_order_release);
  delete dead;
}

template <template <class> class VMImpl>
void RunReaderWriterStress(int readers, double seconds) {
  using VM = VMImpl<StressPayload>;
  const int nprocs = readers + 1;
  VM vm(nprocs, new StressPayload);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (int pid = 1; pid <= readers; ++pid) {
    threads.emplace_back([&, pid] {
      while (!stop.load(std::memory_order_acquire)) {
        StressPayload* held = vm.acquire(pid);
        for (int k = 0; k < 16; ++k) {
          ASSERT_EQ(held->magic.load(std::memory_order_acquire), kMagic)
              << "version freed while a reader holds it";
        }
        for (StressPayload* dead : vm.release(pid)) check_and_delete(dead);
      }
    });
  }

  mvcc::Timer timer;
  std::uint64_t committed = 0;
  while (timer.seconds() < seconds) {
    vm.acquire(0);
    for (StressPayload* dead : vm.set(0, new StressPayload))
      check_and_delete(dead);
    for (StressPayload* dead : vm.release(0)) check_and_delete(dead);
    ++committed;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  for (StressPayload* dead : vm.shutdown_drain()) check_and_delete(dead);

  EXPECT_GT(committed, 0u);
  EXPECT_EQ(vm.live_versions(), 0);
}

TEST(VmStress, Pswf) { RunReaderWriterStress<PswfVersionManager>(3, 0.2); }
TEST(VmStress, Pslf) { RunReaderWriterStress<PslfVersionManager>(3, 0.2); }
TEST(VmStress, Hp) { RunReaderWriterStress<HpVersionManager>(3, 0.2); }
TEST(VmStress, Ep) { RunReaderWriterStress<EpVersionManager>(3, 0.2); }
TEST(VmStress, Ibr) { RunReaderWriterStress<IbrVersionManager>(3, 0.2); }
TEST(VmStress, Rcu) { RunReaderWriterStress<RcuVersionManager>(3, 0.2); }

// The headline comparison under a genuinely slow concurrent reader: the
// precise algorithms keep the uncollected-version count bounded by the
// process count while EP's grows with the writer's commit rate.
template <template <class> class VMImpl>
std::int64_t MaxLiveUnderSlowReader() {
  using VM = VMImpl<StressPayload>;
  constexpr int kProcs = 3;  // slow reader = 1, writer = 0
  VM vm(kProcs, new StressPayload);
  std::atomic<bool> reader_holding{false};
  std::atomic<bool> stop{false};

  std::thread slow_reader([&] {
    StressPayload* held = vm.acquire(1);
    reader_holding.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_EQ(held->magic.load(std::memory_order_acquire), kMagic);
      std::this_thread::yield();
    }
    for (StressPayload* dead : vm.release(1)) check_and_delete(dead);
  });

  while (!reader_holding.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 2000; ++i) {
    vm.acquire(0);
    for (StressPayload* dead : vm.set(0, new StressPayload))
      check_and_delete(dead);
    for (StressPayload* dead : vm.release(0)) check_and_delete(dead);
  }
  const std::int64_t max_live = vm.max_live_versions();
  stop.store(true, std::memory_order_release);
  slow_reader.join();
  for (StressPayload* dead : vm.shutdown_drain()) check_and_delete(dead);
  return max_live;
}

TEST(VmStressSlowReader, PreciseStaysBoundedWhereEpExplodes) {
  const std::int64_t pswf = MaxLiveUnderSlowReader<PswfVersionManager>();
  const std::int64_t pslf = MaxLiveUnderSlowReader<PslfVersionManager>();
  const std::int64_t hp = MaxLiveUnderSlowReader<HpVersionManager>();
  const std::int64_t ep = MaxLiveUnderSlowReader<EpVersionManager>();
  EXPECT_LE(pswf, 3 + 1);
  EXPECT_LE(pslf, 3 + 1);
  EXPECT_LE(hp, 2 * 3);
  EXPECT_EQ(ep, 2000);  // every one of the writer's commits stays pinned
  EXPECT_LT(8 * pswf, ep);
  EXPECT_LT(8 * pslf, ep);
}

// ---------------------------------------------------------------------------
// End-to-end: the Table 2 / Figure 6 workload harness over real FMap
// snapshots, checking it runs, makes progress, and leaks no tree nodes.

template <template <class> class VMImpl>
void RunWorkloadSmoke() {
  const long long nodes_before = mvcc::ftree::live_nodes();
  mvcc::workload::RangeWorkloadConfig cfg;
  cfg.readers = 2;
  cfg.initial_size = 2000;
  cfg.nq = 8;
  cfg.nu = 4;
  cfg.duration_sec = 0.05;
  auto result = mvcc::workload::run_range_workload<VMImpl>(cfg);
  EXPECT_GT(result.queries, 0u);
  EXPECT_GT(result.updates, 0u);
  EXPECT_GT(result.versions, 0u);
  EXPECT_GE(result.max_live_versions, 0);
  // Precise accounting end to end: every snapshot the workload allocated
  // was freed, so every tree node is back.
  EXPECT_EQ(mvcc::ftree::live_nodes(), nodes_before);
}

// ---------------------------------------------------------------------------
// reclaim_payloads / reclaim_quiesce (vm/base.h): the deferred-reclaim
// plumbing frees every payload exactly once in either mode. Double frees
// would drive the live counter negative (and trip ASan); leaks leave it
// positive.

struct CountedPayload {
  static std::atomic<int> live;
  CountedPayload() { live.fetch_add(1, std::memory_order_relaxed); }
  ~CountedPayload() { live.fetch_sub(1, std::memory_order_relaxed); }
};
std::atomic<int> CountedPayload::live{0};

TEST(VmReclaim, InlineModeFreesImmediately) {
  set_bg_reclaim(false);
  std::vector<CountedPayload*> batch;
  for (int i = 0; i < 50; ++i) batch.push_back(new CountedPayload());
  EXPECT_EQ(CountedPayload::live.load(), 50);
  reclaim_payloads(std::move(batch));
  EXPECT_EQ(CountedPayload::live.load(), 0);
  EXPECT_EQ(reclaim_queue_depth().load(), 0);
}

TEST(VmReclaim, DeferredModeFreesExactlyOnceAfterQuiesce) {
  set_bg_reclaim(true);
  for (int round = 0; round < 20; ++round) {
    std::vector<CountedPayload*> batch;
    for (int i = 0; i < 40; ++i) batch.push_back(new CountedPayload());
    reclaim_payloads(std::move(batch));
  }
  reclaim_quiesce();
  set_bg_reclaim(false);
  EXPECT_EQ(CountedPayload::live.load(), 0);
  EXPECT_EQ(reclaim_queue_depth().load(), 0);
}

TEST(VmReclaim, PreciseFreedSetsStayExactWhenDeferred) {
  // A PSWF writer churning versions with a concurrent reader, every
  // returned freed set routed through the background lane: the claim CAS
  // hands each payload back exactly once, so deferral frees each exactly
  // once — the live counter lands on zero, never below.
  set_bg_reclaim(true);
  {
    PswfVersionManager<CountedPayload> vm(2, new CountedPayload());
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)vm.acquire(1);
        reclaim_payloads(vm.release(1));
      }
    });
    for (int i = 0; i < 3000; ++i) {
      (void)vm.acquire(0);
      reclaim_payloads(vm.set(0, new CountedPayload()));
      reclaim_payloads(vm.release(0));
    }
    stop.store(true, std::memory_order_release);
    reader.join();
    for (CountedPayload* p : vm.shutdown_drain()) delete p;
  }
  reclaim_quiesce();
  set_bg_reclaim(false);
  EXPECT_EQ(CountedPayload::live.load(), 0);
  EXPECT_EQ(reclaim_queue_depth().load(), 0);
}

// --- acquire_version_vector: the cross-manager validate-retry helper ------

TEST(VmVersionVector, ReturnsConsistentVectorWhenTokenIsStable) {
  std::uint64_t retries = 0;
  auto vec = acquire_version_vector<int>(
      4, [] { return std::uint64_t{10}; }, [](std::size_t s) {
        return static_cast<int>(s) * 2;
      },
      &retries);
  ASSERT_EQ(vec.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(vec[s], static_cast<int>(s) * 2);
  EXPECT_EQ(retries, 0u);
}

TEST(VmVersionVector, RetriesUntilTheTokenValidates) {
  // The token changes under the first two passes (a cross-shard commit
  // overlapping the pins), then stabilizes; the pins of the failed passes
  // must be dropped and re-taken.
  std::uint64_t token_reads = 0;
  std::uint64_t pins = 0;
  std::uint64_t retries = 0;
  auto vec = acquire_version_vector<std::uint64_t>(
      3,
      [&] {
        // Reads come in pre/post pairs per pass; disagree for 2 passes.
        const std::uint64_t r = token_reads++;
        return r < 4 ? r : std::uint64_t{100};
      },
      [&](std::size_t) { return ++pins; }, &retries);
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(pins, 9u);  // 3 passes x 3 shards; stale pins were discarded
  EXPECT_EQ(vec[2], 9u);
}

TEST(VmVersionVector, RetryBudgetExhaustionReturnsEmpty) {
  std::uint64_t token = 0;
  std::uint64_t retries = 0;
  auto vec = acquire_version_vector<int>(
      2, [&] { return token++; }, [](std::size_t) { return 1; }, &retries,
      /*max_retries=*/3);
  EXPECT_TRUE(vec.empty());
  EXPECT_EQ(retries, 4u);  // initial pass + 3 budgeted retries all failed
}

TEST(VmWorkload, PswfEndToEnd) { RunWorkloadSmoke<PswfVersionManager>(); }
TEST(VmWorkload, PslfEndToEnd) { RunWorkloadSmoke<PslfVersionManager>(); }
TEST(VmWorkload, HpEndToEnd) { RunWorkloadSmoke<HpVersionManager>(); }
TEST(VmWorkload, EpEndToEnd) { RunWorkloadSmoke<EpVersionManager>(); }
TEST(VmWorkload, IbrEndToEnd) { RunWorkloadSmoke<IbrVersionManager>(); }
TEST(VmWorkload, RcuEndToEnd) { RunWorkloadSmoke<RcuVersionManager>(); }

}  // namespace
