// Tests for the raw functional-tree node layer: AVL balance bound, exact
// reference counting (live-node counter returns to zero), precision of
// collect across shared versions, and the fork-join parallel bulk ops
// (bit-identical results and exact refcounts at every worker count).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/ftree/ops.h"

namespace {

using namespace mvcc;
using N = ftree::Node<std::uint64_t, std::uint64_t>;

// Recursively validates order, AVL balance, cached height/weight, and that
// every reachable node is referenced. Returns the height.
int check_invariants(const N* t, const std::uint64_t* lo,
                     const std::uint64_t* hi) {
  if (t == nullptr) return 0;
  EXPECT_GE(t->refs.load(), 1u);
  if (lo != nullptr) {
    EXPECT_LT(*lo, t->key);
  }
  if (hi != nullptr) {
    EXPECT_LT(t->key, *hi);
  }
  const int hl = check_invariants(t->left, lo, &t->key);
  const int hr = check_invariants(t->right, &t->key, hi);
  EXPECT_LE(std::abs(hl - hr), 1) << "AVL violation at key " << t->key;
  EXPECT_EQ(t->height(), static_cast<std::uint32_t>(1 + std::max(hl, hr)));
  EXPECT_EQ(t->weight(),
            1 + ftree::weight_of(t->left) + ftree::weight_of(t->right));
  return 1 + std::max(hl, hr);
}

void expect_matches(const N* t, const std::map<std::uint64_t, std::uint64_t>& want) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  ftree::for_each(t, [&got](std::uint64_t k, std::uint64_t v) {
    got.emplace_back(k, v);
  });
  ASSERT_EQ(got.size(), want.size());
  auto it = want.begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

// AVL height bound: h <= 1.4405 log2(n + 2).
void expect_balanced(const N* t) {
  const int h = check_invariants(t, nullptr, nullptr);
  const double n = static_cast<double>(ftree::weight_of(t));
  EXPECT_LE(h, 1.4405 * std::log2(n + 2.0) + 1.0);
}

TEST(Ftree, InsertFindBasic) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  for (std::uint64_t i = 0; i < 100; ++i) t = ftree::insert(t, i * 2, i);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t* v = ftree::find(t, i * 2);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
    EXPECT_EQ(ftree::find(t, i * 2 + 1), nullptr);
  }
  EXPECT_EQ(ftree::collect(t), 100u);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, InsertReplacesExistingKey) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  t = ftree::insert(t, std::uint64_t{5}, std::uint64_t{1});
  t = ftree::insert(t, std::uint64_t{5}, std::uint64_t{2});
  EXPECT_EQ(ftree::weight_of(t), 1u);
  EXPECT_EQ(*ftree::find(t, std::uint64_t{5}), 2u);
  ftree::collect(t);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, BalancedAfterRandomInserts) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(42);
  std::map<std::uint64_t, std::uint64_t> want;
  N* t = nullptr;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(40000);
    const std::uint64_t v = rng();
    t = ftree::insert(t, k, v);
    want[k] = v;
  }
  expect_balanced(t);
  expect_matches(t, want);
  EXPECT_EQ(ftree::collect(t), want.size());
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, BalancedAfterSequentialInserts) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  for (std::uint64_t i = 0; i < 10000; ++i) t = ftree::insert(t, i, i);
  expect_balanced(t);
  ftree::collect(t);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, RefcountsExactAcrossManyVersions) {
  // Keep ten versions alive simultaneously, then collect them in an
  // arbitrary order; the global live-node counter must return to baseline.
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(7);
  std::vector<N*> versions;
  N* t = nullptr;
  for (int v = 0; v < 10; ++v) {
    for (int i = 0; i < 500; ++i) {
      t = ftree::insert(t, rng.next_below(2000), rng());
    }
    versions.push_back(ftree::share(t));
  }
  ftree::collect(t);
  for (std::size_t i : {3u, 0u, 9u, 5u, 1u, 7u, 2u, 8u, 6u, 4u}) {
    ftree::collect(versions[i]);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, CollectDerivedVersionPreservesSurvivor) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(11);
  std::map<std::uint64_t, std::uint64_t> want;
  N* base = nullptr;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.next_below(10000);
    const std::uint64_t v = rng();
    base = ftree::insert(base, k, v);
    want[k] = v;
  }
  const std::uint64_t n_base = ftree::weight_of(base);
  for (int round = 0; round < 50; ++round) {
    const long long live_before = ftree::live_nodes();
    N* derived = ftree::insert(ftree::share(base), rng.next_below(10000), rng());
    // The derived version's private footprint is one search path.
    const long long private_nodes = ftree::live_nodes() - live_before;
    EXPECT_LE(private_nodes, static_cast<long long>(base->height()) + 2);
    const std::size_t freed = ftree::collect(derived);
    EXPECT_EQ(static_cast<long long>(freed), private_nodes);
    EXPECT_EQ(ftree::live_nodes(), live_before);
  }
  // Survivor is fully intact after all derived versions died.
  EXPECT_EQ(ftree::weight_of(base), n_base);
  expect_balanced(base);
  expect_matches(base, want);
  ftree::collect(base);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, SplitPartitionsAndReportsValue) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  for (std::uint64_t i = 0; i < 1000; ++i) t = ftree::insert(t, i * 2, i);
  auto s = ftree::split(t, std::uint64_t{500});
  EXPECT_TRUE(s.found);
  EXPECT_EQ(s.value, 250u);
  EXPECT_EQ(ftree::weight_of(s.left), 250u);   // keys 0..498
  EXPECT_EQ(ftree::weight_of(s.right), 749u);  // keys 502..1998
  check_invariants(s.left, nullptr, nullptr);
  check_invariants(s.right, nullptr, nullptr);
  ftree::collect(s.left);
  ftree::collect(s.right);

  N* u = ftree::insert(static_cast<N*>(nullptr), std::uint64_t{1},
                       std::uint64_t{1});
  auto miss = ftree::split(u, std::uint64_t{2});
  EXPECT_FALSE(miss.found);
  ftree::collect(miss.left);
  ftree::collect(miss.right);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, UnionMergesAndStaysBalanced) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(13);
  std::map<std::uint64_t, std::uint64_t> want;
  N* a = nullptr;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.next_below(6000);
    a = ftree::insert(a, k, std::uint64_t{1});
    want[k] = 1;
  }
  N* b = nullptr;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t k = rng.next_below(6000);
    b = ftree::insert(b, k, std::uint64_t{2});
    want[k] = 2;  // b wins duplicates
  }
  N* u = ftree::union_(a, b);
  expect_balanced(u);
  expect_matches(u, want);
  ftree::collect(u);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, RepeatedUnionsKeepBalance) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(17);
  N* acc = nullptr;
  for (int round = 0; round < 30; ++round) {
    N* delta = nullptr;
    for (int i = 0; i < 200; ++i) {
      delta = ftree::insert(delta, rng(), std::uint64_t{1});
    }
    acc = ftree::union_(acc, delta);
    expect_balanced(acc);
  }
  ftree::collect(acc);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, MultiInsertMatchesLoop) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(19);
  std::map<std::uint64_t, std::uint64_t> want;
  N* t = nullptr;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.next_below(5000);
    const std::uint64_t v = rng();
    t = ftree::insert(t, k, v);
    want[k] = v;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
  for (int i = 0; i < 300; ++i) batch.emplace_back(rng.next_below(5000), rng());
  ftree::prepare_batch(batch);
  for (const auto& [k, v] : batch) want[k] = v;
  N* u = ftree::multi_insert(
      t, std::span<const std::pair<std::uint64_t, std::uint64_t>>(batch));
  expect_balanced(u);
  expect_matches(u, want);
  ftree::collect(u);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Structural (bit-for-bit) equality: same keys, values, shape and cached
// height/weight in every node. This is the contract of the parallel bulk
// ops — the worker count must not change the resulting tree at all.
void expect_identical(const N* x, const N* y) {
  ASSERT_EQ(x == nullptr, y == nullptr);
  if (x == nullptr) return;
  EXPECT_EQ(x->key, y->key);
  EXPECT_EQ(x->val, y->val);
  EXPECT_EQ(x->height(), y->height());
  EXPECT_EQ(x->weight(), y->weight());
  expect_identical(x->left, y->left);
  expect_identical(x->right, y->right);
}

N* make_random_tree(Xoshiro256& rng, int n, std::uint64_t key_space) {
  N* t = nullptr;
  for (int i = 0; i < n; ++i) {
    t = ftree::insert(t, rng.next_below(key_space), rng());
  }
  return t;
}

TEST(Ftree, ParallelUnionBitIdenticalToSequential) {
  const long long base_live = ftree::live_nodes();
  {
    Xoshiro256 rng(23);
    N* a = make_random_tree(rng, 20000, std::uint64_t{1} << 40);
    N* b = make_random_tree(rng, 6000, std::uint64_t{1} << 40);
    N* seq = ftree::union_(ftree::share(a), ftree::share(b), 1);
    expect_balanced(seq);
    for (int threads : {2, 4, 8}) {
      N* par = ftree::union_(ftree::share(a), ftree::share(b), threads);
      expect_identical(seq, par);
      ftree::collect(par);
    }
    ftree::collect(seq);
    ftree::collect(a);
    ftree::collect(b);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, ParallelBuildSortedAndMultiInsertBitIdentical) {
  const long long base_live = ftree::live_nodes();
  {
    Xoshiro256 rng(29);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
    for (int i = 0; i < 10000; ++i) batch.emplace_back(rng(), rng());
    ftree::prepare_batch(batch);
    const std::span<const std::pair<std::uint64_t, std::uint64_t>> sp(batch);

    using Aug = ftree::NoAug<std::uint64_t, std::uint64_t>;
    N* seq = ftree::build_sorted<std::uint64_t, std::uint64_t, Aug>(sp, 1);
    N* par = ftree::build_sorted<std::uint64_t, std::uint64_t, Aug>(sp, 4);
    expect_identical(seq, par);
    ftree::collect(par);

    N* t = make_random_tree(rng, 30000, std::uint64_t{1} << 40);
    N* mseq = ftree::multi_insert(ftree::share(t), sp, 1);
    N* mpar = ftree::multi_insert(ftree::share(t), sp, 4);
    expect_identical(mseq, mpar);
    expect_balanced(mseq);
    ftree::collect(mseq);
    ftree::collect(mpar);
    ftree::collect(t);
    ftree::collect(seq);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, ParallelUnionRefcountsExactWithSharedInputs) {
  // Parallel unions over inputs shared with live versions: the forked
  // workers consume disjoint owned references, so the counts stay exact —
  // the survivors keep their content and the counter returns to baseline.
  const long long base_live = ftree::live_nodes();
  {
    Xoshiro256 rng(31);
    std::map<std::uint64_t, std::uint64_t> want_a;
    N* a = nullptr;
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t k = rng.next_below(std::uint64_t{1} << 40);
      const std::uint64_t v = rng();
      a = ftree::insert(a, k, v);
      want_a[k] = v;
    }
    N* b = make_random_tree(rng, 8000, std::uint64_t{1} << 40);
    for (int round = 0; round < 4; ++round) {
      N* u1 = ftree::union_(ftree::share(a), ftree::share(b), 4);
      N* u2 = ftree::union_(ftree::share(a), ftree::share(b), 4);
      expect_identical(u1, u2);
      ftree::collect(u1);
      ftree::collect(u2);
    }
    expect_matches(a, want_a);  // survivor untouched by the parallel runs
    expect_balanced(a);
    ftree::collect(a);
    ftree::collect(b);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Exactness canary for the expose/collect interleaving the version layers
// rely on: a writer unions deltas over the current version while OTHER
// threads collect retired versions whose trees share nodes with the one
// being exposed. expose must not ignore the result of its decrement — if a
// concurrent collect releases the second-to-last reference between
// expose's load and its fetch_sub, expose now holds the last one, and
// dropping it blindly would leak the node and strand a count on each
// child. The counter returning to baseline proves no interleaving did.
TEST(Ftree, ExposeExactUnderConcurrentVersionChurn) {
  const long long base_live = ftree::live_nodes();
  {
    Xoshiro256 seed_rng(37);
    N* cur = nullptr;
    for (int i = 0; i < 8000; ++i) {
      cur = ftree::insert(cur, seed_rng.next_below(1 << 14), seed_rng());
    }
    std::mutex mu;
    std::vector<N*> retired;
    bool done = false;
    std::vector<std::thread> collectors;
    for (int c = 0; c < 3; ++c) {
      collectors.emplace_back([&] {
        for (;;) {
          N* v = nullptr;
          {
            std::lock_guard<std::mutex> g(mu);
            if (!retired.empty()) {
              v = retired.back();
              retired.pop_back();
            } else if (done) {
              return;
            }
          }
          if (v != nullptr) ftree::collect(v);
        }
      });
    }
    Xoshiro256 rng(41);
    for (int i = 0; i < 30000; ++i) {
      N* delta = nullptr;
      for (int j = 0; j < 6; ++j) {
        delta = ftree::insert(delta, rng.next_below(1 << 14), rng());
      }
      N* next = ftree::union_(ftree::share(cur), delta, 1);
      {
        std::lock_guard<std::mutex> g(mu);
        retired.push_back(cur);  // the old version dies on a collector
      }
      cur = next;
    }
    {
      std::lock_guard<std::mutex> g(mu);
      done = true;
    }
    for (auto& t : collectors) t.join();
    expect_balanced(cur);
    ftree::collect(cur);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, PrepareBatchSortsAndKeepsLastDuplicate) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch = {
      {5, 1}, {3, 1}, {5, 2}, {1, 1}, {3, 2}, {5, 3}};
  ftree::prepare_batch(batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(batch[1], (std::pair<std::uint64_t, std::uint64_t>{3, 2}));
  EXPECT_EQ(batch[2], (std::pair<std::uint64_t, std::uint64_t>{5, 3}));
}

// Property test over duplicate-heavy random batches (the shape the txn
// batching layer produces under a Zipfian workload): after prepare_batch
// the batch is strictly sorted and holds, per key, the LAST value that
// appeared in submission order — exactly what a loop of repeated inserts
// would leave.
TEST(Ftree, PrepareBatchDuplicateHeavyLastWinsProperty) {
  Xoshiro256 rng(0xba7c4);
  for (int trial = 0; trial < 32; ++trial) {
    const std::size_t n = 1 + rng.next_below(600);
    const std::uint64_t key_space = 1 + rng.next_below(24);  // heavy dups
    std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
    batch.reserve(n);
    std::map<std::uint64_t, std::uint64_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = rng.next_below(key_space);
      const std::uint64_t v = i;  // unique serial values expose wrong picks
      batch.emplace_back(k, v);
      want[k] = v;
    }
    ftree::prepare_batch(batch);
    ASSERT_EQ(batch.size(), want.size());
    for (std::size_t i = 0; i + 1 < batch.size(); ++i) {
      EXPECT_LT(batch[i].first, batch[i + 1].first);
    }
    for (const auto& [k, v] : batch) {
      ASSERT_TRUE(want.count(k));
      EXPECT_EQ(v, want[k]) << "key " << k << " lost its last submission";
    }
  }
}

}  // namespace
