// Tests for the raw functional-tree node layer: AVL balance bound, exact
// reference counting (live-node counter returns to zero), and precision of
// collect across shared versions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/ftree/ops.h"

namespace {

using namespace mvcc;
using N = ftree::Node<std::uint64_t, std::uint64_t>;

// Recursively validates order, AVL balance, cached height/weight, and that
// every reachable node is referenced. Returns the height.
int check_invariants(const N* t, const std::uint64_t* lo,
                     const std::uint64_t* hi) {
  if (t == nullptr) return 0;
  EXPECT_GE(t->refs.load(), 1u);
  if (lo != nullptr) {
    EXPECT_LT(*lo, t->key);
  }
  if (hi != nullptr) {
    EXPECT_LT(t->key, *hi);
  }
  const int hl = check_invariants(t->left, lo, &t->key);
  const int hr = check_invariants(t->right, &t->key, hi);
  EXPECT_LE(std::abs(hl - hr), 1) << "AVL violation at key " << t->key;
  EXPECT_EQ(t->height, static_cast<std::uint32_t>(1 + std::max(hl, hr)));
  EXPECT_EQ(t->weight,
            1 + ftree::weight_of(t->left) + ftree::weight_of(t->right));
  return 1 + std::max(hl, hr);
}

void expect_matches(const N* t, const std::map<std::uint64_t, std::uint64_t>& want) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  ftree::for_each(t, [&got](std::uint64_t k, std::uint64_t v) {
    got.emplace_back(k, v);
  });
  ASSERT_EQ(got.size(), want.size());
  auto it = want.begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

// AVL height bound: h <= 1.4405 log2(n + 2).
void expect_balanced(const N* t) {
  const int h = check_invariants(t, nullptr, nullptr);
  const double n = static_cast<double>(ftree::weight_of(t));
  EXPECT_LE(h, 1.4405 * std::log2(n + 2.0) + 1.0);
}

TEST(Ftree, InsertFindBasic) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  for (std::uint64_t i = 0; i < 100; ++i) t = ftree::insert(t, i * 2, i);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t* v = ftree::find(t, i * 2);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
    EXPECT_EQ(ftree::find(t, i * 2 + 1), nullptr);
  }
  EXPECT_EQ(ftree::collect(t), 100u);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, InsertReplacesExistingKey) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  t = ftree::insert(t, std::uint64_t{5}, std::uint64_t{1});
  t = ftree::insert(t, std::uint64_t{5}, std::uint64_t{2});
  EXPECT_EQ(ftree::weight_of(t), 1u);
  EXPECT_EQ(*ftree::find(t, std::uint64_t{5}), 2u);
  ftree::collect(t);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, BalancedAfterRandomInserts) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(42);
  std::map<std::uint64_t, std::uint64_t> want;
  N* t = nullptr;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(40000);
    const std::uint64_t v = rng();
    t = ftree::insert(t, k, v);
    want[k] = v;
  }
  expect_balanced(t);
  expect_matches(t, want);
  EXPECT_EQ(ftree::collect(t), want.size());
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, BalancedAfterSequentialInserts) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  for (std::uint64_t i = 0; i < 10000; ++i) t = ftree::insert(t, i, i);
  expect_balanced(t);
  ftree::collect(t);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, RefcountsExactAcrossManyVersions) {
  // Keep ten versions alive simultaneously, then collect them in an
  // arbitrary order; the global live-node counter must return to baseline.
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(7);
  std::vector<N*> versions;
  N* t = nullptr;
  for (int v = 0; v < 10; ++v) {
    for (int i = 0; i < 500; ++i) {
      t = ftree::insert(t, rng.next_below(2000), rng());
    }
    versions.push_back(ftree::share(t));
  }
  ftree::collect(t);
  for (std::size_t i : {3u, 0u, 9u, 5u, 1u, 7u, 2u, 8u, 6u, 4u}) {
    ftree::collect(versions[i]);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, CollectDerivedVersionPreservesSurvivor) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(11);
  std::map<std::uint64_t, std::uint64_t> want;
  N* base = nullptr;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.next_below(10000);
    const std::uint64_t v = rng();
    base = ftree::insert(base, k, v);
    want[k] = v;
  }
  const std::uint64_t n_base = ftree::weight_of(base);
  for (int round = 0; round < 50; ++round) {
    const long long live_before = ftree::live_nodes();
    N* derived = ftree::insert(ftree::share(base), rng.next_below(10000), rng());
    // The derived version's private footprint is one search path.
    const long long private_nodes = ftree::live_nodes() - live_before;
    EXPECT_LE(private_nodes, static_cast<long long>(base->height) + 2);
    const std::size_t freed = ftree::collect(derived);
    EXPECT_EQ(static_cast<long long>(freed), private_nodes);
    EXPECT_EQ(ftree::live_nodes(), live_before);
  }
  // Survivor is fully intact after all derived versions died.
  EXPECT_EQ(ftree::weight_of(base), n_base);
  expect_balanced(base);
  expect_matches(base, want);
  ftree::collect(base);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, SplitPartitionsAndReportsValue) {
  const long long base_live = ftree::live_nodes();
  N* t = nullptr;
  for (std::uint64_t i = 0; i < 1000; ++i) t = ftree::insert(t, i * 2, i);
  auto s = ftree::split(t, std::uint64_t{500});
  EXPECT_TRUE(s.found);
  EXPECT_EQ(s.value, 250u);
  EXPECT_EQ(ftree::weight_of(s.left), 250u);   // keys 0..498
  EXPECT_EQ(ftree::weight_of(s.right), 749u);  // keys 502..1998
  check_invariants(s.left, nullptr, nullptr);
  check_invariants(s.right, nullptr, nullptr);
  ftree::collect(s.left);
  ftree::collect(s.right);

  N* u = ftree::insert(static_cast<N*>(nullptr), std::uint64_t{1},
                       std::uint64_t{1});
  auto miss = ftree::split(u, std::uint64_t{2});
  EXPECT_FALSE(miss.found);
  ftree::collect(miss.left);
  ftree::collect(miss.right);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, UnionMergesAndStaysBalanced) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(13);
  std::map<std::uint64_t, std::uint64_t> want;
  N* a = nullptr;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.next_below(6000);
    a = ftree::insert(a, k, std::uint64_t{1});
    want[k] = 1;
  }
  N* b = nullptr;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t k = rng.next_below(6000);
    b = ftree::insert(b, k, std::uint64_t{2});
    want[k] = 2;  // b wins duplicates
  }
  N* u = ftree::union_(a, b);
  expect_balanced(u);
  expect_matches(u, want);
  ftree::collect(u);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, RepeatedUnionsKeepBalance) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(17);
  N* acc = nullptr;
  for (int round = 0; round < 30; ++round) {
    N* delta = nullptr;
    for (int i = 0; i < 200; ++i) {
      delta = ftree::insert(delta, rng(), std::uint64_t{1});
    }
    acc = ftree::union_(acc, delta);
    expect_balanced(acc);
  }
  ftree::collect(acc);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, MultiInsertMatchesLoop) {
  const long long base_live = ftree::live_nodes();
  Xoshiro256 rng(19);
  std::map<std::uint64_t, std::uint64_t> want;
  N* t = nullptr;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.next_below(5000);
    const std::uint64_t v = rng();
    t = ftree::insert(t, k, v);
    want[k] = v;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
  for (int i = 0; i < 300; ++i) batch.emplace_back(rng.next_below(5000), rng());
  ftree::prepare_batch(batch);
  for (const auto& [k, v] : batch) want[k] = v;
  N* u = ftree::multi_insert(
      t, std::span<const std::pair<std::uint64_t, std::uint64_t>>(batch));
  expect_balanced(u);
  expect_matches(u, want);
  ftree::collect(u);
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Ftree, PrepareBatchSortsAndKeepsLastDuplicate) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch = {
      {5, 1}, {3, 1}, {5, 2}, {1, 1}, {3, 2}, {5, 3}};
  ftree::prepare_batch(batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(batch[1], (std::pair<std::uint64_t, std::uint64_t>{3, 2}));
  EXPECT_EQ(batch[2], (std::pair<std::uint64_t, std::uint64_t>{5, 3}));
}

// Property test over duplicate-heavy random batches (the shape the txn
// batching layer produces under a Zipfian workload): after prepare_batch
// the batch is strictly sorted and holds, per key, the LAST value that
// appeared in submission order — exactly what a loop of repeated inserts
// would leave.
TEST(Ftree, PrepareBatchDuplicateHeavyLastWinsProperty) {
  Xoshiro256 rng(0xba7c4);
  for (int trial = 0; trial < 32; ++trial) {
    const std::size_t n = 1 + rng.next_below(600);
    const std::uint64_t key_space = 1 + rng.next_below(24);  // heavy dups
    std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
    batch.reserve(n);
    std::map<std::uint64_t, std::uint64_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = rng.next_below(key_space);
      const std::uint64_t v = i;  // unique serial values expose wrong picks
      batch.emplace_back(k, v);
      want[k] = v;
    }
    ftree::prepare_batch(batch);
    ASSERT_EQ(batch.size(), want.size());
    for (std::size_t i = 0; i + 1 < batch.size(); ++i) {
      EXPECT_LT(batch[i].first, batch[i + 1].first);
    }
    for (const auto& [k, v] : batch) {
      ASSERT_TRUE(want.count(k));
      EXPECT_EQ(v, want[k]) << "key " << k << " lost its last submission";
    }
  }
}

}  // namespace
