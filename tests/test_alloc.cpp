// Tests for the alloc/ slab allocator: magazine caches, lock-free depot,
// cross-thread block flow, the unified reclaim seam, and the invariants the
// rest of the system leans on (a recycled block never aliases a live one;
// ftree::live_nodes() stays exact with the pool active).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "mvcc/alloc/pool.h"
#include "mvcc/alloc/reclaim.h"
#include "mvcc/common/env.h"
#include "mvcc/ftree/ops.h"

namespace {

using namespace mvcc;

TEST(Alloc, SizeClassMapping) {
  EXPECT_EQ(alloc::size_class(1), 0u);
  EXPECT_EQ(alloc::size_class(16), 0u);
  EXPECT_EQ(alloc::size_class(17), 1u);
  EXPECT_EQ(alloc::size_class(48), 2u);
  EXPECT_EQ(alloc::size_class(alloc::kMaxBlockBytes),
            alloc::kNumClasses - 1);
  for (std::size_t ci = 0; ci < alloc::kNumClasses; ++ci) {
    EXPECT_EQ(alloc::size_class(alloc::class_bytes(ci)), ci);
  }
}

TEST(Alloc, RoundTripAndAlignment) {
  alloc::Pool pool(1 << 12);
  std::set<void*> seen;
  std::vector<void*> blocks;
  for (int i = 0; i < 500; ++i) {
    void* p = pool.allocate(48);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alloc::kQuantum, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "live block handed out twice";
    std::memset(p, 0xab, 48);  // the block must be fully writable
    blocks.push_back(p);
  }
  for (void* p : blocks) pool.deallocate(p, 48);
}

TEST(Alloc, RecyclesFreedBlocksWithoutNewSlabs) {
  alloc::Pool pool(1 << 12);
  std::vector<void*> blocks;
  for (int i = 0; i < 256; ++i) blocks.push_back(pool.allocate(64));
  const std::int64_t slabs_after_warmup = pool.stats().slabs;
  // Steady-state churn at the warmed-up footprint: the pool must serve
  // everything from recycled blocks, never growing another slab.
  for (int round = 0; round < 50; ++round) {
    pool.deallocate_batch(blocks.data(), blocks.size(), 64);
    blocks.clear();
    for (int i = 0; i < 256; ++i) blocks.push_back(pool.allocate(64));
  }
  EXPECT_EQ(pool.stats().slabs, slabs_after_warmup);
  pool.deallocate_batch(blocks.data(), blocks.size(), 64);
}

TEST(Alloc, ReusedBlockNeverAliasesLiveBlock) {
  alloc::Pool pool(1 << 12);
  std::set<void*> live;
  std::vector<void*> dead;
  // Interleave: keep every odd allocation live, free the even ones, then
  // allocate a fresh wave — nothing the pool hands back may overlap a
  // block it still considers live.
  for (int i = 0; i < 400; ++i) {
    void* p = pool.allocate(32);
    if (i % 2 == 0) {
      dead.push_back(p);
    } else {
      live.insert(p);
    }
  }
  pool.deallocate_batch(dead.data(), dead.size(), 32);
  for (int i = 0; i < 400; ++i) {
    void* p = pool.allocate(32);
    EXPECT_EQ(live.count(p), 0u) << "recycled block aliases a live one";
    std::memset(p, 0x5a, 32);
    dead.push_back(p);  // reuse the vector as the free list
  }
  // The live set must be untouched by the writes above (their storage was
  // never handed out again). Spot-check by writing/reading a pattern.
  for (void* p : live) {
    std::memset(p, 0x11, 32);
    EXPECT_EQ(static_cast<unsigned char*>(p)[31], 0x11);
  }
}

TEST(Alloc, PoolAddressReuseDoesNotResurrectDeadThreadCache) {
  // Regression: local_cache()'s thread-local lookaside keys on the Pool
  // address. Destroying a pool and constructing another at the SAME address
  // (placement new makes the reuse deterministic; sequential stack pools hit
  // it by accident) must not hand back the dead pool's ThreadCache, whose
  // magazines point into the deleted chunk table and freed slabs.
  alignas(alloc::Pool) unsigned char storage[sizeof(alloc::Pool)];
  auto* first = ::new (static_cast<void*>(storage)) alloc::Pool(1 << 12);
  void* a = first->allocate(48);  // seeds this thread's lookaside
  ASSERT_NE(a, nullptr);
  first->deallocate(a, 48);
  first->~Pool();
  auto* second = ::new (static_cast<void*>(storage)) alloc::Pool(1 << 12);
  void* b = second->allocate(48);  // must re-register, not reuse the stale cache
  ASSERT_NE(b, nullptr);
  std::memset(b, 0x7e, 48);  // ASan faults here if the block came off a dead slab
  second->deallocate(b, 48);
  second->~Pool();
}

TEST(Alloc, CrossThreadFree) {
  alloc::Pool pool(1 << 12);
  constexpr int kBlocks = 1000;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool.allocate(48));
  // Free every block on another thread; its cache flushes full magazines
  // to the depot on exit.
  std::thread([&] {
    for (void* p : blocks) pool.deallocate(p, 48);
  }).join();
  // This thread can now re-allocate the same storage via the depot.
  const std::int64_t slabs_before = pool.stats().slabs;
  std::set<void*> freed(blocks.begin(), blocks.end());
  int recycled = 0;
  std::vector<void*> again;
  for (int i = 0; i < kBlocks; ++i) {
    void* p = pool.allocate(48);
    if (freed.count(p) != 0) ++recycled;
    again.push_back(p);
  }
  EXPECT_EQ(pool.stats().slabs, slabs_before);
  EXPECT_GT(recycled, kBlocks / 2);
  EXPECT_GT(pool.stats().depot_transfers, 0);
  pool.deallocate_batch(again.data(), again.size(), 48);
}

TEST(Alloc, DepotTransferUnderContention) {
  // Producer/consumer pairs force whole-magazine depot traffic: producers
  // allocate and publish blocks, consumers free them. Every block must be
  // handed out exactly once while live (no depot pop may duplicate one).
  alloc::Pool pool(1 << 14);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::mutex mu;
  std::vector<void*> handoff;
  std::atomic<int> produced{0};
  std::atomic<bool> duplicate{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {  // producer
        for (int i = 0; i < kPerThread; ++i) {
          void* p = pool.allocate(80);
          // Stamp the block; a double-allocation of a live block would
          // let two producers race on this non-atomic write under TSan.
          *static_cast<std::uint64_t*>(p) =
              (static_cast<std::uint64_t>(t) << 32) | i;
          std::lock_guard<std::mutex> lock(mu);
          handoff.push_back(p);
          produced.fetch_add(1, std::memory_order_relaxed);
        }
      } else {  // consumer
        int freed = 0;
        while (freed < kPerThread) {
          void* p = nullptr;
          {
            std::lock_guard<std::mutex> lock(mu);
            if (!handoff.empty()) {
              p = handoff.back();
              handoff.pop_back();
            }
          }
          if (p == nullptr) {
            std::this_thread::yield();
            continue;
          }
          pool.deallocate(p, 80);
          ++freed;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(duplicate.load());
  EXPECT_EQ(produced.load(), (kThreads / 2) * kPerThread);
  EXPECT_GT(pool.stats().depot_transfers, 0);
}

TEST(Alloc, RoutingFallsBackToOperatorNewForLargeBlocks) {
  // Blocks above kMaxBlockBytes bypass the pool entirely, whatever the
  // MVCC_ALLOC route — allocate/deallocate must still pair up.
  void* p = alloc::allocate(alloc::kMaxBlockBytes + 1);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xcd, alloc::kMaxBlockBytes + 1);
  alloc::deallocate(p, alloc::kMaxBlockBytes + 1);
  std::vector<void*> big;
  for (int i = 0; i < 8; ++i) big.push_back(alloc::allocate(4096));
  alloc::deallocate_batch(big.data(), big.size(), 4096);
}

TEST(Alloc, CreateDestroyRunsConstructorsOnce) {
  struct Probe {
    explicit Probe(int* c) : counter(c) { ++*counter; }
    ~Probe() { --*counter; }
    int* counter;
    char pad[24];
  };
  int count = 0;
  std::vector<Probe*> probes;
  for (int i = 0; i < 100; ++i) probes.push_back(alloc::create<Probe>(&count));
  EXPECT_EQ(count, 100);
  for (Probe* p : probes) alloc::destroy(p);
  EXPECT_EQ(count, 0);
}

TEST(Alloc, ReclaimBatchInlineRunsDisposeNow) {
  int count = 0;
  struct Probe {
    explicit Probe(int* c) : counter(c) { ++*counter; }
    ~Probe() { --*counter; }
    int* counter;
  };
  std::vector<Probe*> dead;
  for (int i = 0; i < 10; ++i) dead.push_back(new Probe(&count));
  EXPECT_EQ(count, 10);
  alloc::reclaim_batch(std::move(dead), alloc::ReclaimLane::kInline);
  EXPECT_EQ(count, 0);
}

TEST(Alloc, ReclaimBatchBackgroundDrainsOnQuiesce) {
  std::vector<std::uint64_t*> dead;
  for (int i = 0; i < 64; ++i) dead.push_back(alloc::create<std::uint64_t>());
  alloc::reclaim_batch(std::move(dead), alloc::ReclaimLane::kBackground,
                       alloc::PoolDispose{});
  alloc::reclaim_quiesce();
  EXPECT_EQ(alloc::reclaim_queue_depth().load(), 0);
}

TEST(Alloc, LiveNodesReturnToBaselineUnderSlab) {
  // The precise-GC exactness proof with the slab allocator active on the
  // global route: versions die, live_nodes returns exactly to baseline.
  const long long baseline = ftree::live_nodes();
  using N = ftree::Node<std::uint64_t, std::uint64_t>;
  N* base = nullptr;
  for (std::uint64_t i = 0; i < 3000; ++i) base = ftree::insert(base, i, i);
  std::vector<N*> versions;
  for (std::uint64_t v = 0; v < 20; ++v) {
    versions.push_back(ftree::share(base));
    for (std::uint64_t i = 0; i < 50; ++i) {
      versions.back() = ftree::insert(versions.back(), v * 1000 + i, i);
    }
  }
  for (N* v : versions) ftree::collect(v);
  ftree::collect(base);
  EXPECT_EQ(ftree::live_nodes(), baseline);
}

TEST(Alloc, PackedNodeLayoutIsCompact) {
  // The height-packed layout: height and weight share one word and an
  // empty augmentation occupies no storage.
  using Plain = ftree::Node<std::uint64_t, std::uint64_t>;
  using Summed = ftree::Node<std::uint64_t, std::uint64_t,
                             ftree::AugSum<std::uint64_t, std::uint64_t>>;
  EXPECT_LE(sizeof(Plain), 48u);
  EXPECT_LE(sizeof(Summed), 56u);
  EXPECT_LE(sizeof(Plain), alloc::kMaxBlockBytes);
}

TEST(AllocConfig, FromEnvParsesAllocKnobs) {
  setenv("MVCC_ALLOC", "malloc", 1);
  setenv("MVCC_SLAB_BYTES", "8192", 1);
  Config c = Config::from_env();
  EXPECT_FALSE(c.alloc_pooled);
  EXPECT_EQ(c.slab_bytes, 8192u);
  setenv("MVCC_ALLOC", "slab", 1);
  c = Config::from_env();
  EXPECT_TRUE(c.alloc_pooled);
  unsetenv("MVCC_ALLOC");
  unsetenv("MVCC_SLAB_BYTES");
}

TEST(AllocConfig, SlabBytesClampsToSaneRange) {
  setenv("MVCC_SLAB_BYTES", "1", 1);
  EXPECT_EQ(Config::from_env().slab_bytes, std::size_t{1} << 12);
  setenv("MVCC_SLAB_BYTES", "999999999", 1);
  EXPECT_EQ(Config::from_env().slab_bytes, std::size_t{1} << 24);
  unsetenv("MVCC_SLAB_BYTES");
  EXPECT_EQ(Config::from_env().slab_bytes, std::size_t{1} << 16);
}

}  // namespace
