// Tests for the value-semantic FMap facade: version semantics (copies are
// O(1) snapshots), augmented range sums against brute force, and bulk ops
// agreeing with their one-at-a-time equivalents.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/ftree/fmap.h"

namespace {

using namespace mvcc;
using SumMap = ftree::FMap<std::uint64_t, std::uint64_t,
                           ftree::AugSum<std::uint64_t, std::uint64_t>>;
using Entry = std::pair<std::uint64_t, std::uint64_t>;

std::vector<Entry> random_entries(int n, std::uint64_t key_space,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Entry> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.emplace_back(rng.next_below(key_space), rng());
  return out;
}

TEST(FMap, EmptyMap) {
  SumMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.aug_range(0, ~std::uint64_t{0}), 0u);
  EXPECT_TRUE(m.to_vector().empty());
}

TEST(FMap, FromEntriesSortsAndLastDuplicateWins) {
  SumMap m = SumMap::from_entries({{5, 1}, {2, 7}, {5, 9}, {8, 3}});
  EXPECT_EQ(m.size(), 3u);
  const std::vector<Entry> want = {{2, 7}, {5, 9}, {8, 3}};
  EXPECT_EQ(m.to_vector(), want);
  EXPECT_EQ(*m.find(5), 9u);
}

TEST(FMap, InsertedCreatesNewVersion) {
  SumMap v0 = SumMap::from_entries({{1, 10}, {2, 20}});
  SumMap v1 = v0.inserted(3, 30);
  SumMap v2 = v1.inserted(2, 99);
  // Old versions unchanged: that's the multiversioning contract.
  EXPECT_EQ(v0.size(), 2u);
  EXPECT_EQ(v0.find(3), nullptr);
  EXPECT_EQ(*v1.find(2), 20u);
  EXPECT_EQ(*v2.find(2), 99u);
  EXPECT_EQ(v2.size(), 3u);
}

TEST(FMap, CopyIsCheapSnapshot) {
  const long long base_live = ftree::live_nodes();
  {
    SumMap m = SumMap::from_entries(random_entries(1000, 1u << 20, 1));
    const long long after_build = ftree::live_nodes();
    SumMap snapshot = m;  // O(1): shares the whole tree
    EXPECT_EQ(ftree::live_nodes(), after_build);
    m = m.inserted(12345, 1);
    EXPECT_EQ(snapshot.find(12345), nullptr);
    EXPECT_EQ(*m.find(12345), 1u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(FMap, MoveTransfersOwnership) {
  const long long base_live = ftree::live_nodes();
  {
    SumMap m = SumMap::from_entries(random_entries(100, 1u << 20, 2));
    SumMap stolen = std::move(m);
    EXPECT_EQ(stolen.size(), 100u);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(FMap, MatchesStdMapUnderRandomInserts) {
  Xoshiro256 rng(3);
  SumMap m;
  std::map<std::uint64_t, std::uint64_t> want;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = rng.next_below(8000);
    const std::uint64_t v = rng.next_below(1000);
    m = m.inserted(k, v);
    want[k] = v;
  }
  EXPECT_EQ(m.size(), want.size());
  const auto got = m.to_vector();
  ASSERT_EQ(got.size(), want.size());
  auto it = want.begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
  for (const auto& [k, v] : want) {
    const std::uint64_t* p = m.find(k);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, v);
  }
}

TEST(FMap, AugRangeAgreesWithBruteForce) {
  SumMap m = SumMap::from_entries(random_entries(2000, 1u << 14, 4));
  const auto entries = m.to_vector();
  Xoshiro256 rng(5);
  for (int q = 0; q < 2000; ++q) {
    std::uint64_t lo = rng.next_below(1u << 14);
    std::uint64_t hi = rng.next_below(1u << 14);
    if (q % 7 == 0) std::swap(lo, hi);  // include empty/reversed ranges
    std::uint64_t brute = 0;
    for (const auto& [k, v] : entries) {
      if (lo <= k && k <= hi) brute += v;
    }
    EXPECT_EQ(m.aug_range(lo, hi), brute) << "range [" << lo << ", " << hi << "]";
  }
  // Degenerate and full ranges.
  EXPECT_EQ(m.aug_range(5, 4), 0u);
  std::uint64_t total = 0;
  for (const auto& [k, v] : entries) total += v;
  EXPECT_EQ(m.aug_range(0, ~std::uint64_t{0}), total);
}

TEST(FMap, UnionWithAppliesDelta) {
  SumMap corpus = SumMap::from_entries(random_entries(3000, 1u << 12, 6));
  SumMap delta = SumMap::from_entries(random_entries(300, 1u << 12, 7));
  const auto corpus_before = corpus.to_vector();
  const auto delta_before = delta.to_vector();
  SumMap merged = corpus.union_with(delta);
  std::map<std::uint64_t, std::uint64_t> want;
  for (const auto& [k, v] : corpus.to_vector()) want[k] = v;
  for (const auto& [k, v] : delta.to_vector()) want[k] = v;  // delta wins
  EXPECT_EQ(merged.size(), want.size());
  for (const auto& [k, v] : want) {
    const std::uint64_t* p = merged.find(k);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, v);
  }
  // Inputs are untouched versions.
  EXPECT_EQ(corpus.to_vector(), corpus_before);
  EXPECT_EQ(delta.to_vector(), delta_before);
}

TEST(FMap, MultiInsertedMatchesLoopOfInserted) {
  SumMap base = SumMap::from_entries(random_entries(4000, 1u << 13, 8));
  std::vector<Entry> batch = random_entries(500, 1u << 13, 9);
  ftree::prepare_batch(batch);
  SumMap bulk = base.multi_inserted(std::span<const Entry>(batch));
  SumMap loop = base;
  for (const auto& [k, v] : batch) loop = loop.inserted(k, v);
  EXPECT_EQ(bulk.size(), loop.size());
  EXPECT_EQ(bulk.to_vector(), loop.to_vector());
  EXPECT_EQ(bulk.aug_range(0, ~std::uint64_t{0}),
            loop.aug_range(0, ~std::uint64_t{0}));
}

// Map-of-maps payload: the value type owns (possibly the last reference
// to) another FMap of the SAME node instantiation, so destroying an outer
// node reenters ftree::collect at the instantiation currently iterating.
// Regression for the thread_local traversal stack being clear()ed by the
// nested call mid-iteration, which silently leaked the outer tree's
// pending subtrees (caught here by live_nodes, and by ASan leak checking
// in CI).
struct NestedVal {
  std::shared_ptr<ftree::FMap<std::uint64_t, NestedVal>> sub;
};
using NestedMap = ftree::FMap<std::uint64_t, NestedVal>;

TEST(FMap, CollectReentrancyMapOfMaps) {
  const long long base_live = ftree::live_nodes();
  {
    NestedMap outer;
    for (std::uint64_t i = 0; i < 64; ++i) {
      auto inner = std::make_shared<NestedMap>();
      for (std::uint64_t j = 0; j < 16; ++j) {
        NestedVal leaf;
        if (j % 4 == 0) {
          // Third level: some inner values own their own maps, so one
          // outer node delete can reenter collect more than one frame deep.
          auto deep = std::make_shared<NestedMap>();
          for (std::uint64_t d = 0; d < 4; ++d) {
            *deep = deep->inserted(d, NestedVal{});
          }
          leaf.sub = std::move(deep);
        }
        *inner = inner->inserted(j, std::move(leaf));
      }
      outer = outer.inserted(i, NestedVal{std::move(inner)});
    }
    EXPECT_EQ(outer.size(), 64u);
  }  // cascading destruction: every delete of an outer node drops inner maps
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(FMap, CollectReentrancyDeepSharedVersions) {
  const long long base_live = ftree::live_nodes();
  {
    // Inner maps shared across outer versions: dropping one version must
    // free exactly its private nodes, and the nested collects triggered by
    // the final version's death must still free everything.
    auto shared_inner = std::make_shared<NestedMap>();
    for (std::uint64_t j = 0; j < 64; ++j) {
      *shared_inner = shared_inner->inserted(j, NestedVal{});
    }
    std::vector<NestedMap> versions;
    NestedMap m;
    for (std::uint64_t i = 0; i < 32; ++i) {
      m = m.inserted(i, NestedVal{shared_inner});
      versions.push_back(m);
    }
    shared_inner.reset();  // the tree entries now hold the only references
    for (std::size_t i = 0; i + 1 < versions.size(); i += 2) {
      versions[i] = NestedMap();
      EXPECT_GT(versions[i + 1].size(), 0u);
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(FMap, ManyVersionsCollectToZero) {
  const long long base_live = ftree::live_nodes();
  {
    std::vector<SumMap> versions;
    SumMap m;
    Xoshiro256 rng(10);
    for (int v = 0; v < 20; ++v) {
      for (int i = 0; i < 200; ++i) m = m.inserted(rng.next_below(1000), rng());
      versions.push_back(m);
    }
    // Drop versions in interleaved order while spot-checking survivors.
    for (std::size_t i = 0; i + 1 < versions.size(); i += 2) {
      versions[i] = SumMap();
      EXPECT_GT(versions[i + 1].size(), 0u);
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

}  // namespace
