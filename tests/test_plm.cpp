// Tests for the persistent list machine: collect must free exactly the
// unreachable tuple set (precision) with cost independent of surviving
// structure, and deep chains must not overflow the stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mvcc/plm/plm.h"

namespace {

using namespace mvcc;

plm::Tuple* make_chain(plm::Machine& m, std::int64_t depth) {
  plm::Tuple* cur = m.make_tuple({plm::Value::from_int(0)});
  for (std::int64_t i = 1; i < depth; ++i) {
    cur = m.make_tuple({plm::Value::from_tuple(cur), plm::Value::from_int(i)});
  }
  return cur;
}

TEST(Plm, ValueTagging) {
  plm::Machine m;
  const plm::Value i = plm::Value::from_int(-17);
  EXPECT_TRUE(i.is_int());
  EXPECT_FALSE(i.is_tuple());
  EXPECT_EQ(i.as_int(), -17);
  plm::Tuple* t = m.make_tuple({plm::Value::from_int(1)});
  const plm::Value v = plm::Value::from_tuple(t);
  EXPECT_TRUE(v.is_tuple());
  EXPECT_EQ(v.as_tuple(), t);
  EXPECT_EQ(t->arity(), 1u);
  EXPECT_EQ(t->slot(0).as_int(), 1);
}

TEST(Plm, CollectOnIntIsNoop) {
  plm::Machine m;
  EXPECT_EQ(m.collect(plm::Value::from_int(5)), 0u);
}

TEST(Plm, ChainCollectFreesExactlyTheChain) {
  plm::Machine m;
  plm::Tuple* head = make_chain(m, 1000);
  m.publish_root(head);
  EXPECT_EQ(m.live_tuples(), 1000u);
  EXPECT_EQ(m.collect(plm::Value::from_tuple(head)), 1000u);
  EXPECT_EQ(m.live_tuples(), 0u);
}

TEST(Plm, DagCollectFreesUnreachableSetOnce) {
  // Diamond: root -> {b, c} -> d. One collect of the root frees all four;
  // d's count reaches zero only after both b and c die.
  plm::Machine m;
  plm::Tuple* d = m.make_tuple({plm::Value::from_int(3)});
  plm::Tuple* b = m.make_tuple({plm::Value::from_tuple(d)});
  plm::Tuple* c = m.make_tuple({plm::Value::from_tuple(d)});
  plm::Tuple* root =
      m.make_tuple({plm::Value::from_tuple(b), plm::Value::from_tuple(c)});
  m.publish_root(root);
  EXPECT_EQ(m.live_tuples(), 4u);
  EXPECT_EQ(m.collect(plm::Value::from_tuple(root)), 4u);
  EXPECT_EQ(m.live_tuples(), 0u);
}

TEST(Plm, DagWithExternalPinKeepsSharedTuple) {
  plm::Machine m;
  plm::Tuple* d = m.make_tuple({plm::Value::from_int(3)});
  m.publish_root(d);  // survivor version pins d
  plm::Tuple* b = m.make_tuple({plm::Value::from_tuple(d)});
  m.publish_root(b);
  EXPECT_EQ(m.collect(plm::Value::from_tuple(b)), 1u);  // only b dies
  EXPECT_EQ(m.live_tuples(), 1u);
  EXPECT_EQ(d->slot(0).as_int(), 3);  // d untouched
  EXPECT_EQ(m.collect(plm::Value::from_tuple(d)), 1u);
  EXPECT_EQ(m.live_tuples(), 0u);
}

TEST(Plm, SharedPrefixCollectFreesOnlyPrivatePath) {
  // The BM_PlmCollectSharedPrefix shape: a long published chain, and a
  // short private path built on top of it. Collecting the derived version
  // must free exactly the private path, never the shared chain.
  constexpr std::int64_t kShared = 5000;
  constexpr int kPrivate = 8;
  plm::Machine m;
  plm::Tuple* base = make_chain(m, kShared);
  m.publish_root(base);
  for (int round = 0; round < 3; ++round) {
    plm::Tuple* v = m.make_tuple({plm::Value::from_tuple(base)});
    for (int i = 1; i < kPrivate; ++i) {
      v = m.make_tuple({plm::Value::from_tuple(v)});
    }
    m.publish_root(v);
    EXPECT_EQ(m.live_tuples(), static_cast<std::size_t>(kShared + kPrivate));
    EXPECT_EQ(m.collect(plm::Value::from_tuple(v)),
              static_cast<std::size_t>(kPrivate));
    EXPECT_EQ(m.live_tuples(), static_cast<std::size_t>(kShared));
  }
  EXPECT_EQ(m.collect(plm::Value::from_tuple(base)),
            static_cast<std::size_t>(kShared));
  EXPECT_EQ(m.live_tuples(), 0u);
}

TEST(Plm, DeepChainCollectDoesNotOverflowStack) {
  constexpr std::int64_t kDepth = 200000;
  plm::Machine m;
  plm::Tuple* head = make_chain(m, kDepth);
  m.publish_root(head);
  EXPECT_EQ(m.collect(plm::Value::from_tuple(head)),
            static_cast<std::size_t>(kDepth));
  EXPECT_EQ(m.live_tuples(), 0u);
}

TEST(Plm, MachineTeardownReclaimsUnrootedTuples) {
  // No crash / leak (ASan job watches this): tuples never published are
  // reclaimed by the machine destructor.
  plm::Machine m;
  make_chain(m, 100);
  EXPECT_EQ(m.live_tuples(), 100u);
}

TEST(Plm, TotalAllocatedCounts) {
  plm::Machine m;
  plm::Tuple* head = make_chain(m, 10);
  m.publish_root(head);
  m.collect(plm::Value::from_tuple(head));
  EXPECT_EQ(m.total_allocated(), 10u);
  EXPECT_EQ(m.live_tuples(), 0u);
}

}  // namespace
