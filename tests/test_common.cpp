// Tests for the env / rng / timing utility layer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "mvcc/common/env.h"
#include "mvcc/common/rng.h"
#include "mvcc/common/timing.h"

namespace {

using namespace mvcc;

TEST(Env, LongDefaultsAndOverrides) {
  unsetenv("MVCC_TEST_LONG");
  EXPECT_EQ(env_long("MVCC_TEST_LONG", 42), 42);
  setenv("MVCC_TEST_LONG", "7", 1);
  EXPECT_EQ(env_long("MVCC_TEST_LONG", 42), 7);
  setenv("MVCC_TEST_LONG", "-3", 1);
  EXPECT_EQ(env_long("MVCC_TEST_LONG", 42), -3);
  setenv("MVCC_TEST_LONG", "junk", 1);
  EXPECT_EQ(env_long("MVCC_TEST_LONG", 42), 42);
  setenv("MVCC_TEST_LONG", "", 1);
  EXPECT_EQ(env_long("MVCC_TEST_LONG", 42), 42);
  unsetenv("MVCC_TEST_LONG");
}

TEST(Env, DoubleDefaultsAndOverrides) {
  unsetenv("MVCC_TEST_DOUBLE");
  EXPECT_DOUBLE_EQ(env_double("MVCC_TEST_DOUBLE", 0.4), 0.4);
  setenv("MVCC_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("MVCC_TEST_DOUBLE", 0.4), 2.5);
  setenv("MVCC_TEST_DOUBLE", "nope", 1);
  EXPECT_DOUBLE_EQ(env_double("MVCC_TEST_DOUBLE", 0.4), 0.4);
  unsetenv("MVCC_TEST_DOUBLE");
}

TEST(Env, ScaleMultipliesAndClampsToOne) {
  unsetenv("MVCC_SCALE");
  EXPECT_EQ(env_scale(1000), 1000);
  setenv("MVCC_SCALE", "2.5", 1);
  EXPECT_EQ(env_scale(1000), 2500);
  setenv("MVCC_SCALE", "0.0001", 1);
  EXPECT_EQ(env_scale(1000), 1);  // positive base never scales to zero
  unsetenv("MVCC_SCALE");
}

TEST(Env, ScaleNoArgReturnsRawMultiplier) {
  unsetenv("MVCC_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  setenv("MVCC_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 2.5);
  setenv("MVCC_SCALE", "0.01", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 0.01);  // fractional scales pass through
  setenv("MVCC_SCALE", "junk", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  unsetenv("MVCC_SCALE");
}

TEST(Env, GrainDefaultsOverridesAndRejectsNonPositive) {
  unsetenv("MVCC_GRAIN");
  EXPECT_EQ(env_grain(), 2048);
  setenv("MVCC_GRAIN", "64", 1);
  EXPECT_EQ(env_grain(), 64);
  setenv("MVCC_GRAIN", "0", 1);
  EXPECT_EQ(env_grain(), 2048);  // a grain of 0 would fork every node
  setenv("MVCC_GRAIN", "-5", 1);
  EXPECT_EQ(env_grain(), 2048);
  setenv("MVCC_GRAIN", "junk", 1);
  EXPECT_EQ(env_grain(), 2048);
  unsetenv("MVCC_GRAIN");
}

TEST(Env, ThreadsIsPositive) {
  unsetenv("MVCC_THREADS");
  EXPECT_GE(env_threads(), 1);
  setenv("MVCC_THREADS", "5", 1);
  EXPECT_EQ(env_threads(), 5);
  setenv("MVCC_THREADS", "-2", 1);
  EXPECT_GE(env_threads(), 1);
  unsetenv("MVCC_THREADS");
}

TEST(Env, GrainClampsTinyValuesToFloor) {
  // Grains below kGrainFloor make bulk ops fork per handful of nodes; the
  // parser clamps them up rather than letting a typo'd knob fall off a
  // scheduling cliff. Non-positive values still mean "use the default".
  setenv("MVCC_GRAIN", "1", 1);
  EXPECT_EQ(env_grain(), kGrainFloor);
  setenv("MVCC_GRAIN", "63", 1);
  EXPECT_EQ(env_grain(), kGrainFloor);
  setenv("MVCC_GRAIN", "64", 1);
  EXPECT_EQ(env_grain(), 64);  // the floor itself passes through
  unsetenv("MVCC_GRAIN");
}

TEST(Env, ConfigFromEnvSeedsEveryKnob) {
  setenv("MVCC_SCALE", "2.0", 1);
  setenv("MVCC_THREADS", "3", 1);
  setenv("MVCC_GRAIN", "512", 1);
  Config c = Config::from_env();
  EXPECT_DOUBLE_EQ(c.scale, 2.0);
  EXPECT_EQ(c.threads, 3);
  EXPECT_EQ(c.grain, 512);
  EXPECT_TRUE(c.alloc_pooled);  // MVCC_ALLOC unset -> slab route
  EXPECT_EQ(c.shards, 1);       // MVCC_SHARDS unset -> single shard
  EXPECT_EQ(c.scaled(1000), 2000);
  EXPECT_EQ(c.scaled(0), 0);  // zero base is exempt from the >=1 clamp
  unsetenv("MVCC_SCALE");
  unsetenv("MVCC_THREADS");
  unsetenv("MVCC_GRAIN");
}

TEST(Env, ConfigShardsParsesAndClamps) {
  setenv("MVCC_SHARDS", "4", 1);
  reload_config();
  EXPECT_EQ(config().shards, 4);
  setenv("MVCC_SHARDS", "0", 1);  // non-positive clamps to 1
  reload_config();
  EXPECT_EQ(config().shards, 1);
  setenv("MVCC_SHARDS", "-3", 1);
  reload_config();
  EXPECT_EQ(config().shards, 1);
  setenv("MVCC_SHARDS", "100000", 1);  // absurd counts clamp to 256
  reload_config();
  EXPECT_EQ(config().shards, 256);
  setenv("MVCC_SHARDS", "bogus", 1);  // malformed falls back to default
  reload_config();
  EXPECT_EQ(config().shards, 1);
  unsetenv("MVCC_SHARDS");
  reload_config();
  EXPECT_EQ(config().shards, 1);
}

TEST(Env, ReloadConfigReseedsTheProcessSingleton) {
  const Config saved = config();
  setenv("MVCC_GRAIN", "4096", 1);
  reload_config();
  EXPECT_EQ(config().grain, 4096);
  unsetenv("MVCC_GRAIN");
  reload_config();
  EXPECT_EQ(config().grain, saved.grain);
}

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, ZeroSeedIsUsable) {
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 60u);  // not stuck in a degenerate cycle
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Timing, TimerAdvancesAndResets) {
  Timer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LE(t.seconds(), b);
}

}  // namespace
