// Tests for the inverted-index subsystem (the Table 3 application):
// corpus determinism under fixed seeds, index-vs-brute-force oracle on
// small corpora, last-write-wins on replayed batches, snapshot isolation
// of and-queries during concurrent add_documents, and precise GC
// (ftree::live_nodes returns to baseline after churn). Suites are named
// Invidx* so the TSan CI tier (-R 'Vm|Txn|Baselines|Invidx') runs the
// concurrency tests under the race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "mvcc/common/rng.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/invidx/corpus.h"
#include "mvcc/invidx/inverted_index.h"
#include "mvcc/vm/pslf.h"
#include "mvcc/vm/pswf.h"

namespace {

using namespace mvcc;
using invidx::CorpusConfig;
using invidx::DocId;
using invidx::Document;
using invidx::InvertedIndex;
using invidx::Term;

using Index = InvertedIndex<vm::PswfVersionManager>;

// Brute-force reference: term -> set of docs containing it.
using Oracle = std::map<Term, std::set<DocId>>;

void apply_to_oracle(Oracle& oracle, const std::vector<Document>& batch) {
  for (const Document& doc : batch) {
    for (Term t : doc.terms) oracle[t].insert(doc.id);
  }
}

std::vector<DocId> oracle_and_query(const Oracle& oracle, Term a, Term b,
                                    std::size_t limit) {
  std::vector<DocId> out;
  const auto ia = oracle.find(a);
  const auto ib = oracle.find(b);
  if (ia == oracle.end() || ib == oracle.end()) return out;
  std::set_intersection(ia->second.begin(), ia->second.end(),
                        ib->second.begin(), ib->second.end(),
                        std::back_inserter(out));
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::vector<Document>> batched(const std::vector<Document>& docs,
                                           std::size_t batch_size) {
  std::vector<std::vector<Document>> out;
  for (std::size_t i = 0; i < docs.size(); i += batch_size) {
    const std::size_t end = std::min(i + batch_size, docs.size());
    out.emplace_back(docs.begin() + static_cast<long>(i),
                     docs.begin() + static_cast<long>(end));
  }
  return out;
}

TEST(Invidx, CorpusDeterministicUnderFixedSeed) {
  CorpusConfig cc;
  cc.num_docs = 200;
  cc.vocabulary = 500;
  cc.terms_per_doc = 16;
  const auto c1 = invidx::make_corpus(cc);
  const auto c2 = invidx::make_corpus(cc);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].id, c2[i].id);
    EXPECT_EQ(c1[i].terms, c2[i].terms);
  }
  EXPECT_EQ(invidx::make_query_terms(cc, 300),
            invidx::make_query_terms(cc, 300));

  CorpusConfig other = cc;
  other.seed ^= 1;
  const auto c3 = invidx::make_corpus(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < c1.size() && !any_diff; ++i) {
    any_diff = c1[i].terms != c3[i].terms;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical corpora";
}

TEST(Invidx, CorpusShapeAndQueryPairs) {
  CorpusConfig cc;
  cc.num_docs = 300;
  cc.vocabulary = 400;
  cc.terms_per_doc = 24;
  const auto corpus = invidx::make_corpus(cc);
  ASSERT_EQ(corpus.size(), cc.num_docs);
  std::set<Term> seen_terms;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].id, i);  // dense ascending doc ids
    ASSERT_FALSE(corpus[i].terms.empty());
    EXPECT_LE(corpus[i].terms.size(), cc.terms_per_doc);
    for (std::size_t j = 0; j < corpus[i].terms.size(); ++j) {
      EXPECT_LT(corpus[i].terms[j], cc.vocabulary);
      if (j > 0) {  // strictly sorted = distinct
        EXPECT_LT(corpus[i].terms[j - 1], corpus[i].terms[j]);
      }
      seen_terms.insert(corpus[i].terms[j]);
    }
  }
  // The Zipf head concentrates mass but the tail still shows up: the
  // corpus should use a healthy share of the vocabulary.
  EXPECT_GT(seen_terms.size(), cc.vocabulary / 4);

  const auto queries = invidx::make_query_terms(cc, 500);
  ASSERT_EQ(queries.size(), 500u);
  for (const auto& [a, b] : queries) {
    EXPECT_LT(a, cc.vocabulary);
    EXPECT_LT(b, cc.vocabulary);
    EXPECT_NE(a, b);
  }
}

TEST(Invidx, MatchesBruteForceOracle) {
  const long long base_live = ftree::live_nodes();
  {
    CorpusConfig cc;
    cc.num_docs = 150;
    cc.vocabulary = 60;
    cc.terms_per_doc = 8;
    const auto corpus = invidx::make_corpus(cc);
    const auto batches = batched(corpus, 16);

    Index idx(1);
    Oracle oracle;
    for (const auto& batch : batches) {
      idx.add_documents(0, batch);
      apply_to_oracle(oracle, batch);
    }

    auto snap = idx.snapshot(0);
    EXPECT_EQ(snap.terms(), oracle.size());
    for (const auto& [t, docs] : oracle) {
      EXPECT_EQ(snap.doc_count(t), docs.size()) << "term " << t;
    }
    // Every term pair: the index's and-query equals the brute-force
    // intersection, both unbounded and truncated by the limit.
    for (Term a = 0; a < cc.vocabulary; ++a) {
      for (Term b = a + 1; b < cc.vocabulary; ++b) {
        const auto want = oracle_and_query(oracle, a, b, corpus.size());
        EXPECT_EQ(idx.and_query(0, a, b, corpus.size()), want);
        EXPECT_EQ(snap.and_query(b, a, corpus.size()), want);  // symmetric
        const auto want3 = oracle_and_query(oracle, a, b, 3);
        EXPECT_EQ(idx.and_query(0, a, b, 3), want3);
      }
    }
    // Absent terms and zero limits yield empty results.
    EXPECT_TRUE(idx.and_query(0, cc.vocabulary + 1, 0, 10).empty());
    EXPECT_TRUE(idx.and_query(0, 0, 1, 0).empty());

    // Last-write-wins: replaying already-applied batches (exactly what
    // bench_table3's update-only phase does when it cycles its batch
    // list) must not double-count any posting.
    idx.add_documents(0, batches.front());
    idx.add_documents(0, batches.back());
    idx.add_documents(0, corpus);  // the whole corpus again, in one txn
    auto replayed = idx.snapshot(0);
    EXPECT_EQ(replayed.terms(), oracle.size());
    for (const auto& [t, docs] : oracle) {
      EXPECT_EQ(replayed.doc_count(t), docs.size())
          << "replay double-counted postings for term " << t;
    }
    for (Term a = 0; a < cc.vocabulary; a += 7) {
      for (Term b = a + 3; b < cc.vocabulary; b += 11) {
        EXPECT_EQ(replayed.and_query(a, b, corpus.size()),
                  oracle_and_query(oracle, a, b, corpus.size()));
      }
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Invidx, WorksThroughPslf) {
  const long long base_live = ftree::live_nodes();
  {
    CorpusConfig cc;
    cc.num_docs = 60;
    cc.vocabulary = 40;
    cc.terms_per_doc = 6;
    const auto corpus = invidx::make_corpus(cc);
    InvertedIndex<vm::PslfVersionManager> idx(2);
    Oracle oracle;
    for (const auto& batch : batched(corpus, 10)) {
      idx.add_documents(1, batch);
      apply_to_oracle(oracle, batch);
    }
    for (Term a = 0; a < cc.vocabulary; a += 3) {
      for (Term b = a + 1; b < cc.vocabulary; b += 5) {
        EXPECT_EQ(idx.and_query(0, a, b, corpus.size()),
                  oracle_and_query(oracle, a, b, corpus.size()));
      }
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Invidx, SnapshotIsolationAcrossCommits) {
  const long long base_live = ftree::live_nodes();
  {
    CorpusConfig cc;
    cc.num_docs = 80;
    cc.vocabulary = 30;
    cc.terms_per_doc = 6;
    const auto corpus = invidx::make_corpus(cc);
    const auto batches = batched(corpus, 20);
    ASSERT_GE(batches.size(), 2u);

    Index idx(2);
    idx.add_documents(1, batches[0]);
    Oracle at_snap;
    apply_to_oracle(at_snap, batches[0]);

    auto snap = idx.snapshot(0);
    std::vector<std::pair<std::vector<DocId>, std::pair<Term, Term>>> frozen;
    for (Term a = 0; a < cc.vocabulary; a += 2) {
      for (Term b = a + 1; b < cc.vocabulary; b += 3) {
        frozen.push_back({snap.and_query(a, b, corpus.size()), {a, b}});
      }
    }
    // Later commits must not bleed into the pinned snapshot.
    for (std::size_t i = 1; i < batches.size(); ++i) {
      idx.add_documents(1, batches[i]);
    }
    for (const auto& [want, q] : frozen) {
      EXPECT_EQ(snap.and_query(q.first, q.second, corpus.size()), want);
      EXPECT_EQ(oracle_and_query(at_snap, q.first, q.second, corpus.size()),
                want);
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Invidx, SnapshotOutlivesIndex) {
  const long long base_live = ftree::live_nodes();
  {
    CorpusConfig cc;
    cc.num_docs = 50;
    cc.vocabulary = 25;
    cc.terms_per_doc = 5;
    const auto corpus = invidx::make_corpus(cc);
    Oracle oracle;
    apply_to_oracle(oracle, corpus);

    auto* idx = new Index(1);
    idx->add_documents(0, corpus);
    auto snap = idx->snapshot(0);
    delete idx;  // snapshot owns its nodes; the manager's death is no event

    for (Term a = 0; a < cc.vocabulary; ++a) {
      for (Term b = a + 1; b < cc.vocabulary; b += 2) {
        EXPECT_EQ(snap.and_query(a, b, corpus.size()),
                  oracle_and_query(oracle, a, b, corpus.size()));
      }
    }
    EXPECT_NE(ftree::live_nodes(), base_live);  // snapshot still holds them
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

TEST(Invidx, LiveNodesReturnToBaselineAfterChurn) {
  const long long base_live = ftree::live_nodes();
  {
    CorpusConfig cc;
    cc.num_docs = 200;
    cc.vocabulary = 80;
    cc.terms_per_doc = 10;
    const auto corpus = invidx::make_corpus(cc);
    Index idx(3);
    // Churn: repeated replays and fresh adds with snapshots taken and
    // dropped along the way.
    for (int round = 0; round < 4; ++round) {
      for (const auto& batch : batched(corpus, 32)) {
        idx.add_documents(2, batch);
        auto s = idx.snapshot(round % 2);
        (void)s.doc_count(0);
      }
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Concurrent writer + query threads: every and-query observes ONE
// consistent version (snapshot isolation), per-reader doc counts are
// monotone (versions only move forward), and the final state matches the
// oracle. Runs under TSan in CI.
TEST(InvidxStress, SnapshotQueriesDuringConcurrentAddDocuments) {
  const long long base_live = ftree::live_nodes();
  {
    constexpr int kReaders = 3;
    CorpusConfig cc;
    cc.num_docs = 600;
    cc.vocabulary = 300;
    cc.terms_per_doc = 12;
    const auto corpus = invidx::make_corpus(cc);
    const auto batches = batched(corpus, 24);
    const auto queries = invidx::make_query_terms(cc, 256);
    Oracle oracle;
    apply_to_oracle(oracle, corpus);

    Index idx(kReaders + 1);
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (const auto& batch : batches) idx.add_documents(kReaders, batch);
      done.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        std::size_t i = static_cast<std::size_t>(t);
        while (!done.load(std::memory_order_acquire)) {
          const auto& [a, b] = queries[i % queries.size()];
          // A snapshot is internally consistent: asking it twice gives
          // the same answer no matter what the writer publishes meanwhile.
          auto snap = idx.snapshot(t);
          const auto r1 = snap.and_query(a, b, 64);
          EXPECT_EQ(snap.and_query(a, b, 64), r1);
          // And no and-query result can exceed the final oracle: the
          // writer only ever adds documents from the corpus.
          const auto want = oracle_and_query(oracle, a, b, cc.num_docs);
          for (DocId d : r1) {
            EXPECT_TRUE(std::binary_search(want.begin(), want.end(), d))
                << "doc " << d << " never indexed for (" << a << "," << b
                << ")";
          }
          i += kReaders;
        }
      });
    }
    writer.join();
    for (auto& t : readers) t.join();

    // Final state equals the oracle.
    auto snap = idx.snapshot(0);
    EXPECT_EQ(snap.terms(), oracle.size());
    for (const auto& [t, docs] : oracle) {
      EXPECT_EQ(snap.doc_count(t), docs.size());
    }
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Per-reader version monotonicity, checked head-on: successive snapshots
// taken by the same slot never lose postings.
TEST(InvidxStress, ReaderSnapshotsAreMonotone) {
  const long long base_live = ftree::live_nodes();
  {
    CorpusConfig cc;
    cc.num_docs = 400;
    cc.vocabulary = 100;
    cc.terms_per_doc = 10;
    const auto corpus = invidx::make_corpus(cc);
    const auto batches = batched(corpus, 16);

    Index idx(2);
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (const auto& batch : batches) idx.add_documents(1, batch);
      done.store(true, std::memory_order_release);
    });
    std::size_t last_total = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto snap = idx.snapshot(0);
      std::size_t total = 0;
      for (Term t = 0; t < cc.vocabulary; t += 17) {
        total += snap.doc_count(t);
      }
      EXPECT_GE(total, last_total) << "a later snapshot lost postings";
      last_total = total;
    }
    writer.join();
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

// Batches large enough to cross the fork-join grain: the bulk apply path
// runs parallel build_sorted + union_ (MVCC_THREADS workers) while reader
// threads concurrently snapshot and drop versions — the exact interleaving
// the refcount audit must survive. Runs under TSan in CI.
TEST(InvidxStress, ParallelBulkApplyUnderConcurrentSnapshots) {
  const long long base_live = ftree::live_nodes();
  {
    constexpr int kReaders = 2;
    CorpusConfig cc;
    cc.num_docs = 2400;
    cc.vocabulary = 6000;
    cc.terms_per_doc = 10;
    cc.theta = 0.5;  // flatter: touch most of the vocabulary per batch
    const auto corpus = invidx::make_corpus(cc);
    const auto batches = batched(corpus, 800);  // ~5-6k distinct terms each
    Oracle oracle;
    apply_to_oracle(oracle, corpus);

    Index idx(kReaders + 1);
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (const auto& batch : batches) idx.add_documents(kReaders, batch);
      done.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        while (!done.load(std::memory_order_acquire)) {
          auto snap = idx.snapshot(t);
          (void)snap.and_query(1, 2, 8);
          (void)snap.terms();
        }
      });
    }
    writer.join();
    for (auto& t : readers) t.join();

    auto snap = idx.snapshot(0);
    EXPECT_EQ(snap.terms(), oracle.size());
    std::size_t want_postings = 0, got_postings = 0;
    for (const auto& [t, docs] : oracle) {
      want_postings += docs.size();
      got_postings += snap.doc_count(t);
    }
    EXPECT_EQ(got_postings, want_postings);
  }
  EXPECT_EQ(ftree::live_nodes(), base_live);
}

}  // namespace
