// exec/pool.h: fork-join correctness (nested forks, stealing, exceptions),
// the background defer/quiesce lane, and clean shutdown with queued work.
// The fork-join ftree integration (bit-identical parallel bulk ops) is
// covered by test_ftree; this file exercises the pool itself.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mvcc/exec/pool.h"

namespace {

using namespace mvcc;

// Recursive fork-join sum of [lo, hi): every level forks, so a run over a
// wide range exercises nested forks, own-deque LIFO pops, and steals.
std::uint64_t par_sum(exec::Pool& pool, std::uint64_t lo, std::uint64_t hi) {
  if (hi - lo <= 512) {
    std::uint64_t s = 0;
    for (std::uint64_t i = lo; i < hi; ++i) s += i;
    return s;
  }
  const std::uint64_t mid = lo + (hi - lo) / 2;
  auto [a, b] = pool.invoke2([&] { return par_sum(pool, lo, mid); },
                             [&] { return par_sum(pool, mid, hi); });
  return a + b;
}

constexpr std::uint64_t sum_formula(std::uint64_t n) {
  return n * (n - 1) / 2;
}

TEST(Exec, Invoke2ReturnsBothResultsInArgumentOrder) {
  exec::Pool pool(2);
  auto [a, b] = pool.invoke2([] { return 1; }, [] { return 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Exec, NestedForksComputeTheSequentialAnswer) {
  exec::Pool pool(3);
  EXPECT_EQ(par_sum(pool, 0, 1 << 17), sum_formula(1 << 17));
}

TEST(Exec, WorkerStealsAnInjectedFork) {
  // fa deliberately does NOT help (it only watches the flag), so the fork
  // can complete only if the pool's worker steals it from the inject
  // queue — a deterministic cross-thread-execution check.
  exec::Pool pool(1);
  std::atomic<bool> fb_ran{false};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto [a, b] = pool.invoke2(
      [&] {
        while (!fb_ran.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
        return fb_ran.load(std::memory_order_acquire) ? 1 : 0;
      },
      [&] {
        fb_ran.store(true, std::memory_order_release);
        return 2;
      });
  EXPECT_EQ(a, 1) << "worker never stole the injected fork";
  EXPECT_EQ(b, 2);
}

TEST(ExecStress, ForkJoinFromManyExternalThreadsUnderContention) {
  exec::Pool pool(2);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kSpan = 1 << 15;
  std::vector<std::uint64_t> sums(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &sums, t] {
      const std::uint64_t lo = static_cast<std::uint64_t>(t) * kSpan;
      sums[static_cast<std::size_t>(t)] = par_sum(pool, lo, lo + kSpan);
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t lo = static_cast<std::uint64_t>(t) * kSpan;
    EXPECT_EQ(sums[static_cast<std::size_t>(t)],
              sum_formula(lo + kSpan) - sum_formula(lo));
  }
}

TEST(Exec, ExceptionFromForkedSidePropagates) {
  exec::Pool pool(2);
  EXPECT_THROW(pool.invoke2([] { return 1; },
                            []() -> int { throw std::runtime_error("fb"); }),
               std::runtime_error);
}

TEST(Exec, ExceptionFromInlineSidePropagatesAfterForkCompletes) {
  exec::Pool pool(2);
  std::atomic<bool> fb_ran{false};
  EXPECT_THROW(pool.invoke2(
                   [&]() -> int { throw std::runtime_error("fa"); },
                   [&] {
                     fb_ran.store(true);
                     return 2;
                   }),
               std::runtime_error);
  // The fork lived on the joiner's stack; the throw path must have joined
  // it before unwinding.
  EXPECT_TRUE(fb_ran.load());
}

TEST(Exec, DeferRunsInBackgroundAndQuiesceDrains) {
  exec::Pool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.defer([&ran] { ran.fetch_add(1); });
  }
  pool.quiesce();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.deferred_pending(), 0);
}

TEST(Exec, QuiesceWaitsForTasksDeferredByDeferredTasks) {
  exec::Pool pool(1);
  std::atomic<int> ran{0};
  pool.defer([&pool, &ran] {
    ran.fetch_add(1);
    pool.defer([&ran] { ran.fetch_add(1); });
  });
  pool.quiesce();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(pool.deferred_pending(), 0);
}

TEST(Exec, ForegroundHasPriorityOverDeferredWork) {
  // With the background lane backed up, fork-join work still completes
  // promptly and correctly (workers run foreground first).
  exec::Pool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.defer([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  EXPECT_EQ(par_sum(pool, 0, 1 << 14), sum_formula(1 << 14));
  pool.quiesce();
  EXPECT_EQ(ran.load(), 64);
}

TEST(Exec, ShutdownDrainsQueuedDeferredTasks) {
  std::atomic<int> ran{0};
  {
    exec::Pool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.defer([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // No quiesce: ~Pool itself must drain the backed-up lane.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(Exec, NonPositiveWorkerCountClampsToOne) {
  exec::Pool pool(0);
  EXPECT_GE(pool.workers(), 1);
  auto [a, b] = pool.invoke2([] { return 3; }, [] { return 4; });
  EXPECT_EQ(a + b, 7);
}

TEST(ExecStress, MixedForkJoinAndDeferAcrossThreads) {
  exec::Pool pool(2);
  std::atomic<std::uint64_t> deferred_ran{0};
  constexpr int kThreads = 3;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        pool.defer([&deferred_ran] { deferred_ran.fetch_add(1); });
        if (par_sum(pool, 0, 1 << 13) != sum_formula(1 << 13)) {
          ok.store(false);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  pool.quiesce();
  EXPECT_EQ(deferred_ran.load(), kThreads * kRounds);
}

TEST(Exec, GlobalInstanceIsASingletonVisibleToInstanceIfCreated) {
  exec::Pool& a = exec::Pool::instance();
  exec::Pool& b = exec::Pool::instance();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(exec::Pool::instance_if_created(), &a);
  EXPECT_GE(a.workers(), 1);
}

}  // namespace
