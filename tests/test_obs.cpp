// Tests for the obs/ metrics layer: histogram quantile math (empty,
// single sample, overflow bucket, cross-bucket interpolation), striped
// counter exactness under concurrent per-thread increments, gauge
// high-water marks, registry identity and dump formats, and an end-to-end
// BatchingMap run asserting that the txn/vm/ftree instrumentation actually
// records under MVCC_STATS. Every suite name starts with "Obs" so CI's
// TSan job can select this tier with `ctest -R '...|Obs'`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mvcc/ftree/fmap.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/pswf.h"

namespace {

using namespace mvcc;

// Flips stats collection on for one test body and always restores the
// disabled default, so suites stay order-independent.
struct ScopedStats {
  ScopedStats() { obs::set_enabled(true); }
  ~ScopedStats() { obs::set_enabled(false); }
};

// The worst-case relative bucket width of the log-bucketed histogram.
constexpr double kResolution = 1.0 / (1 << obs::LatencyHistogram::kSubBits);

// ---------------------------------------------------------------------------
// Counter.

TEST(ObsCounter, StartsAtZeroAndSums) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Gauge.

TEST(ObsGauge, UpdateMaxKeepsHighWaterMark) {
  obs::Gauge g;
  g.update_max(10);
  g.update_max(3);
  EXPECT_EQ(g.value(), 10);
  g.update_max(17);
  EXPECT_EQ(g.value(), 17);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
}

TEST(ObsGauge, ConcurrentUpdateMaxConverges) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        g.update_max(static_cast<std::int64_t>(t) * 100000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), (kThreads - 1) * 100000 + 19999);
}

// ---------------------------------------------------------------------------
// Histogram quantile math.

TEST(ObsHistogram, EmptyHistogramReadsZero) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.0);
}

TEST(ObsHistogram, SingleSampleWithinBucketResolution) {
  obs::LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_NEAR(h.quantile(q), 1000.0, 1000.0 * kResolution) << "q=" << q;
  }
}

TEST(ObsHistogram, IdentityRangeIsExact) {
  // Values below 2^kSubBits occupy width-1 integer buckets and read back
  // exactly — the freed_per_sweep distribution of mostly-zeros relies on
  // this (an all-zero histogram must not report p50 = 0.5).
  obs::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.0);
  h.record(3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(ObsHistogram, OverflowBucketSaturates) {
  obs::LatencyHistogram h;
  h.record(std::uint64_t{1} << 60);  // far beyond the covered range
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  const double limit =
      static_cast<double>(std::uint64_t{1} << obs::LatencyHistogram::kMaxExp);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), limit);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), limit);
}

TEST(ObsHistogram, CrossBucketInterpolation) {
  // A uniform ramp: quantiles should track the underlying distribution to
  // within one bucket of relative error.
  obs::LatencyHistogram h;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t v = 1; v <= kN; ++v) h.record(v);
  EXPECT_EQ(h.count(), kN);
  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double expect = q * static_cast<double>(kN);
    EXPECT_NEAR(h.quantile(q), expect, expect * kResolution + 1.0)
        << "q=" << q;
  }
}

TEST(ObsHistogram, QuantilesAreMonotone) {
  obs::LatencyHistogram h;
  for (std::uint64_t v = 0; v < 4096; v += 7) h.record(v * v % 100000);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(ObsHistogram, IndexOfIsMonotoneAndInRange) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << 50);
       v = v * 2 + 1) {
    const std::size_t idx = obs::LatencyHistogram::index_of(v);
    EXPECT_LT(idx, obs::LatencyHistogram::kBuckets);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCount) {
  obs::LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(i * 31 + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(ObsRegistry, SameNameReturnsSameMetric) {
  obs::Counter& a = obs::registry().counter("obstest/identity");
  obs::Counter& b = obs::registry().counter("obstest/identity");
  EXPECT_EQ(&a, &b);
  obs::LatencyHistogram& ha = obs::registry().histogram("obstest/hist");
  obs::LatencyHistogram& hb = obs::registry().histogram("obstest/hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsRegistry, DumpTextEmitsFlatNameValueLines) {
  obs::registry().counter("obstest/dump_counter").add(7);
  obs::registry().gauge("obstest/dump_gauge").set(13);
  obs::registry().histogram("obstest/dump_hist").record(100);
  const std::string text = obs::registry().dump_text("pfx/");
  EXPECT_NE(text.find("pfx/obstest/dump_counter=7"), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_gauge=13"), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_hist/count=1"), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_hist/p50="), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_hist/p999="), std::string::npos);
}

TEST(ObsRegistry, DumpJsonIsOneFlatObject) {
  obs::registry().counter("obstest/json_counter").add(3);
  const std::string json = obs::registry().dump_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"obstest/json_counter\": 3"), std::string::npos);
  // Flat object: no nested braces between the outer pair.
  EXPECT_EQ(json.find('{', 1), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: the instrumentation actually records.

using PswfMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                 ftree::NoAug<std::uint64_t, std::uint64_t>,
                                 vm::PswfVersionManager>;

// The two *AreRecorded tests need live instrumentation sites; under
// -DMVCC_STATS=OFF those sites are compiled out, so only the
// disabled-path contract below is testable.
#if !defined(MVCC_STATS_DISABLED)

TEST(ObsBatchingE2E, CommitLatencyAndStallsAreRecorded) {
  ScopedStats stats;
  obs::LatencyHistogram& commit_lat =
      obs::registry().histogram("txn/commit_latency_ns");
  obs::LatencyHistogram& batch_size =
      obs::registry().histogram("txn/batch_size");
  obs::Counter& stalls = obs::registry().counter("txn/flattener_stalls");
  const std::uint64_t lat0 = commit_lat.count();
  const std::uint64_t sizes0 = batch_size.count();
  const std::uint64_t stalls0 = stalls.value();

  std::uint64_t batches = 0;
  {
    PswfMap map(2, {});
    for (std::uint64_t i = 0; i < 100; ++i) {
      map.upsert_sync(static_cast<int>(i % 2), i, i * 3);
    }
    map.flush_all();
    batches = map.batches_committed();
  }

  // Every upsert_sync recorded one commit-latency sample.
  EXPECT_EQ(commit_lat.count() - lat0, 100u);
  // Every published batch recorded its size.
  EXPECT_EQ(batch_size.count() - sizes0, batches);
  // Sequential sync updates park their producer on dry rings, so the
  // flattener's stall detection must have fired.
  EXPECT_GE(stalls.value() - stalls0, 1u);
}

TEST(ObsBatchingE2E, VmAndFtreeMetricsAreRecorded) {
  ScopedStats stats;
  obs::Counter& retired = obs::registry().counter("vm/versions_retired");
  const std::uint64_t retired0 = retired.value();
  const long long bytes0 =
      ftree::g_live_bytes.load(std::memory_order_relaxed);

  std::uint64_t batches = 0;
  {
    PswfMap map(1, {});
    for (std::uint64_t i = 0; i < 200; ++i) map.upsert_sync(0, i, i);
    batches = map.batches_committed();
    // While the map is live, footprint high-water marks cover its tree.
    EXPECT_GE(obs::registry().gauge("ftree/live_nodes_hwm").value(),
              ftree::live_nodes());
    EXPECT_GT(obs::registry().gauge("ftree/live_bytes_hwm").value(), 0);
  }

  // One version retirement per published batch.
  EXPECT_EQ(retired.value() - retired0, batches);
  EXPECT_GE(obs::registry().gauge("vm/live_versions_hwm").value(), 1);
  // freed_per_sweep saw one record per writer sweep (one per set).
  EXPECT_GE(obs::registry().histogram("vm/freed_per_sweep").count(),
            batches);
  // Byte-exact accounting: everything allocated under stats-on was freed.
  EXPECT_EQ(ftree::g_live_bytes.load(std::memory_order_relaxed), bytes0);
}

#endif  // !MVCC_STATS_DISABLED

TEST(ObsBatchingE2E, DisabledMeansNoRecording) {
  obs::set_enabled(false);
  obs::LatencyHistogram& commit_lat =
      obs::registry().histogram("txn/commit_latency_ns");
  const std::uint64_t lat0 = commit_lat.count();
  {
    PswfMap map(1, {});
    for (std::uint64_t i = 0; i < 50; ++i) map.upsert_sync(0, i, i);
  }
  EXPECT_EQ(commit_lat.count(), lat0);
}

}  // namespace
