// Tests for the obs/ metrics layer: histogram quantile math (empty,
// single sample, overflow bucket, cross-bucket interpolation), striped
// counter exactness under concurrent per-thread increments, gauge
// high-water marks, registry identity and dump formats, and an end-to-end
// BatchingMap run asserting that the txn/vm/ftree instrumentation actually
// records under MVCC_STATS. Every suite name starts with "Obs" so CI's
// TSan job can select this tier with `ctest -R '...|Obs'`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mvcc/ftree/fmap.h"
#include "mvcc/ftree/ops.h"
#include "mvcc/obs/obs.h"
#include "mvcc/txn/batching.h"
#include "mvcc/vm/pswf.h"

namespace {

using namespace mvcc;

// Flips stats collection on for one test body and always restores the
// disabled default, so suites stay order-independent.
struct ScopedStats {
  ScopedStats() { obs::set_enabled(true); }
  ~ScopedStats() { obs::set_enabled(false); }
};

// The worst-case relative bucket width of the log-bucketed histogram.
constexpr double kResolution = 1.0 / (1 << obs::LatencyHistogram::kSubBits);

// ---------------------------------------------------------------------------
// Counter.

TEST(ObsCounter, StartsAtZeroAndSums) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Gauge.

TEST(ObsGauge, UpdateMaxKeepsHighWaterMark) {
  obs::Gauge g;
  g.update_max(10);
  g.update_max(3);
  EXPECT_EQ(g.value(), 10);
  g.update_max(17);
  EXPECT_EQ(g.value(), 17);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
}

TEST(ObsGauge, ConcurrentUpdateMaxConverges) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        g.update_max(static_cast<std::int64_t>(t) * 100000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), (kThreads - 1) * 100000 + 19999);
}

// ---------------------------------------------------------------------------
// Histogram quantile math.

TEST(ObsHistogram, EmptyHistogramReadsZero) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.0);
}

TEST(ObsHistogram, SingleSampleWithinBucketResolution) {
  obs::LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_NEAR(h.quantile(q), 1000.0, 1000.0 * kResolution) << "q=" << q;
  }
}

TEST(ObsHistogram, IdentityRangeIsExact) {
  // Values below 2^kSubBits occupy width-1 integer buckets and read back
  // exactly — the freed_per_sweep distribution of mostly-zeros relies on
  // this (an all-zero histogram must not report p50 = 0.5).
  obs::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.0);
  h.record(3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(ObsHistogram, OverflowBucketSaturates) {
  obs::LatencyHistogram h;
  h.record(std::uint64_t{1} << 60);  // far beyond the covered range
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  const double limit =
      static_cast<double>(std::uint64_t{1} << obs::LatencyHistogram::kMaxExp);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), limit);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), limit);
}

TEST(ObsHistogram, CrossBucketInterpolation) {
  // A uniform ramp: quantiles should track the underlying distribution to
  // within one bucket of relative error.
  obs::LatencyHistogram h;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t v = 1; v <= kN; ++v) h.record(v);
  EXPECT_EQ(h.count(), kN);
  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double expect = q * static_cast<double>(kN);
    EXPECT_NEAR(h.quantile(q), expect, expect * kResolution + 1.0)
        << "q=" << q;
  }
}

TEST(ObsHistogram, QuantilesAreMonotone) {
  obs::LatencyHistogram h;
  for (std::uint64_t v = 0; v < 4096; v += 7) h.record(v * v % 100000);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(ObsHistogram, IndexOfIsMonotoneAndInRange) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << 50);
       v = v * 2 + 1) {
    const std::size_t idx = obs::LatencyHistogram::index_of(v);
    EXPECT_LT(idx, obs::LatencyHistogram::kBuckets);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCount) {
  obs::LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(i * 31 + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(ObsRegistry, SameNameReturnsSameMetric) {
  obs::Counter& a = obs::registry().counter("obstest/identity");
  obs::Counter& b = obs::registry().counter("obstest/identity");
  EXPECT_EQ(&a, &b);
  obs::LatencyHistogram& ha = obs::registry().histogram("obstest/hist");
  obs::LatencyHistogram& hb = obs::registry().histogram("obstest/hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsRegistry, DumpTextEmitsFlatNameValueLines) {
  obs::registry().counter("obstest/dump_counter").add(7);
  obs::registry().gauge("obstest/dump_gauge").set(13);
  obs::registry().histogram("obstest/dump_hist").record(100);
  const std::string text = obs::registry().dump_text("pfx/");
  EXPECT_NE(text.find("pfx/obstest/dump_counter=7"), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_gauge=13"), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_hist/count=1"), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_hist/p50="), std::string::npos);
  EXPECT_NE(text.find("pfx/obstest/dump_hist/p999="), std::string::npos);
}

TEST(ObsRegistry, DumpJsonIsOneFlatObject) {
  obs::registry().counter("obstest/json_counter").add(3);
  const std::string json = obs::registry().dump_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"obstest/json_counter\": 3"), std::string::npos);
  // Flat object: no nested braces between the outer pair.
  EXPECT_EQ(json.find('{', 1), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: the instrumentation actually records.

using PswfMap = txn::BatchingMap<std::uint64_t, std::uint64_t,
                                 ftree::NoAug<std::uint64_t, std::uint64_t>,
                                 vm::PswfVersionManager>;

// The two *AreRecorded tests need live instrumentation sites; under
// -DMVCC_STATS=OFF those sites are compiled out, so only the
// disabled-path contract below is testable.
#if !defined(MVCC_STATS_DISABLED)

TEST(ObsBatchingE2E, CommitLatencyAndStallsAreRecorded) {
  ScopedStats stats;
  obs::LatencyHistogram& commit_lat =
      obs::registry().histogram("txn/commit_latency_ns");
  obs::LatencyHistogram& batch_size =
      obs::registry().histogram("txn/batch_size");
  obs::Counter& stalls = obs::registry().counter("txn/flattener_stalls");
  const std::uint64_t lat0 = commit_lat.count();
  const std::uint64_t sizes0 = batch_size.count();
  const std::uint64_t stalls0 = stalls.value();

  std::uint64_t batches = 0;
  {
    PswfMap map(2, {});
    for (std::uint64_t i = 0; i < 100; ++i) {
      map.upsert_sync(static_cast<int>(i % 2), i, i * 3);
    }
    map.flush_all();
    batches = map.batches_committed();
  }

  // Every upsert_sync recorded one commit-latency sample.
  EXPECT_EQ(commit_lat.count() - lat0, 100u);
  // Every published batch recorded its size.
  EXPECT_EQ(batch_size.count() - sizes0, batches);
  // Sequential sync updates park their producer on dry rings, so the
  // flattener's stall detection must have fired.
  EXPECT_GE(stalls.value() - stalls0, 1u);
}

TEST(ObsBatchingE2E, VmAndFtreeMetricsAreRecorded) {
  ScopedStats stats;
  obs::Counter& retired = obs::registry().counter("vm/versions_retired");
  const std::uint64_t retired0 = retired.value();
  const long long bytes0 =
      ftree::g_live_bytes.load(std::memory_order_relaxed);

  std::uint64_t batches = 0;
  {
    PswfMap map(1, {});
    for (std::uint64_t i = 0; i < 200; ++i) map.upsert_sync(0, i, i);
    batches = map.batches_committed();
    // While the map is live, footprint high-water marks cover its tree.
    EXPECT_GE(obs::registry().gauge("ftree/live_nodes_hwm").value(),
              ftree::live_nodes());
    EXPECT_GT(obs::registry().gauge("ftree/live_bytes_hwm").value(), 0);
  }

  // One version retirement per published batch.
  EXPECT_EQ(retired.value() - retired0, batches);
  EXPECT_GE(obs::registry().gauge("vm/live_versions_hwm").value(), 1);
  // freed_per_sweep saw one record per writer sweep (one per set).
  EXPECT_GE(obs::registry().histogram("vm/freed_per_sweep").count(),
            batches);
  // Byte-exact accounting: everything allocated under stats-on was freed.
  EXPECT_EQ(ftree::g_live_bytes.load(std::memory_order_relaxed), bytes0);
}

#endif  // !MVCC_STATS_DISABLED

// ---------------------------------------------------------------------------
// Delta snapshots.

TEST(ObsDelta, MeasuresGrowthSinceConstruction) {
  obs::Counter c;
  c.add(10);
  auto d = obs::snapshot(c);
  EXPECT_EQ(d.delta(), 0u);
  c.add(32);
  EXPECT_EQ(d.delta(), 32u);
  d.rebase();
  EXPECT_EQ(d.delta(), 0u);
  std::uint64_t raw = 100;
  obs::Delta fn([&raw] { return raw; });
  raw = 107;
  EXPECT_EQ(fn.delta(), 7u);
}

// ---------------------------------------------------------------------------
// Histogram min and bucket export.

TEST(ObsHistogram, MinIsExactNotBucketResolved) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.min(), 0u);  // empty reads zero
  h.record(1000);
  h.record(37);
  h.record(999999);
  EXPECT_EQ(h.min(), 37u);
}

TEST(ObsHistogram, BucketsJsonListsNonEmptyBucketsOnly) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.buckets_json(), "[]");
  h.record(2);
  h.record(2);
  h.record(2);
  EXPECT_EQ(h.buckets_json(), "[[2, 3, 3]]");  // identity bucket [2, 3) x3
}

TEST(ObsRegistry, DumpsCarryMinAndBuckets) {
  obs::registry().histogram("obstest/minbuckets").record(5);
  const std::string text = obs::registry().dump_text();
  EXPECT_NE(text.find("obstest/minbuckets/min=5"), std::string::npos);
  // Arrays stay out of the scalar text format.
  EXPECT_EQ(text.find("obstest/minbuckets/buckets"), std::string::npos);
  const std::string json = obs::registry().dump_json();
  EXPECT_NE(json.find("\"obstest/minbuckets/min\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"obstest/minbuckets/buckets\": [[5, 6, 1]]"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Footprint sampler.

TEST(ObsSampler, NotStartedHasNoRows) {
  obs::Sampler s;
  EXPECT_FALSE(s.running());
  s.sample_once();  // no-op before start
  EXPECT_EQ(s.samples_taken(), 0u);
  EXPECT_TRUE(s.rows().empty());
  EXPECT_EQ(s.dump_csv(), "t_ms\n");
}

TEST(ObsSampler, ManualModeRingWrapKeepsNewestRows) {
  obs::Sampler s;
  std::int64_t x = 0;
  s.register_probe("x", [&x] { return x; });
  ASSERT_TRUE(s.start(0, 4));
  EXPECT_FALSE(s.start(0, 4));  // already running
  for (int i = 1; i <= 9; ++i) {
    x = i;
    s.sample_once();
  }
  s.stop();                           // takes the final sample (x == 9)
  EXPECT_EQ(s.samples_taken(), 11u);  // initial + 9 manual + final
  const auto rows = s.rows();
  ASSERT_EQ(rows.size(), 4u);  // ring capacity retains the newest window
  EXPECT_EQ(rows[0].values[0], 7);
  EXPECT_EQ(rows[3].values[0], 9);
  double prev = -1.0;
  for (const auto& r : rows) {
    EXPECT_GE(r.t_ms, prev);  // timestamps stay monotone across the wrap
    prev = r.t_ms;
  }
}

TEST(ObsSampler, CsvHasFixedColumnsAndOneLinePerRow) {
  obs::Sampler s;
  s.register_probe("a", [] { return 1; });
  s.register_probe("b", [] { return 2; });
  s.register_probe("a", [] { return 7; });  // re-registration replaces
  ASSERT_TRUE(s.start(0, 16));
  s.sample_once();
  s.stop();
  const auto cols = s.columns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "a");
  EXPECT_EQ(cols[1], "b");
  const std::string csv = s.dump_csv();
  EXPECT_EQ(csv.rfind("t_ms,a,b\n", 0), 0u);  // header first
  int lines = 0;
  for (char ch : csv) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);  // header + initial + manual + final
  EXPECT_NE(csv.find(",7,2\n"), std::string::npos);
}

TEST(ObsSampler, BackgroundThreadSamplesUntilStopped) {
  obs::Sampler s;
  std::atomic<std::int64_t> v{0};
  s.register_probe("v", [&v] { return v.load(std::memory_order_relaxed); });
  ASSERT_TRUE(s.start(1));
  EXPECT_TRUE(s.running());
  v.store(5, std::memory_order_relaxed);
  while (s.samples_taken() < 3) std::this_thread::yield();
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_GE(s.samples_taken(), 4u);  // >= 3 waited for, plus the final one
  EXPECT_EQ(s.rows().back().values[0], 5);
  s.stop();  // idempotent
  // Restartable after a stop.
  ASSERT_TRUE(s.start(0, 4));
  s.stop();
}

// ---------------------------------------------------------------------------
// Event tracer.

#if !defined(MVCC_STATS_DISABLED)

// Forces tracing on for one test body and restores the off default.
struct ScopedTrace {
  ScopedTrace() {
    obs::set_trace_enabled(true);
    obs::Tracer::instance().reset_for_test();
  }
  ~ScopedTrace() { obs::set_trace_enabled(false); }
};

TEST(ObsTrace, SpansAndInstantsLandInChromeJson) {
  ScopedTrace trace;
  {
    obs::TraceSpan span("obstest/span", 1);
    span.set_arg(42);
  }
  obs::trace_instant("obstest/instant", 7);
  const std::string json = obs::Tracer::instance().dump_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obstest/span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"v\": 42}"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obstest/instant\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
}

TEST(ObsTrace, ConcurrentEmissionCountsEveryEvent) {
  ScopedTrace trace;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::TraceSpan span("obstest/worker",
                            static_cast<std::uint64_t>(i));
        obs::trace_instant("obstest/tick");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::Tracer::instance().events_emitted(),
            std::uint64_t{2} * kThreads * kPerThread);
}

#endif  // !MVCC_STATS_DISABLED

TEST(ObsTrace, DisabledEmitsNothingAndDumpsValidJson) {
  obs::set_trace_enabled(false);
  obs::Tracer::instance().reset_for_test();
  { obs::TraceSpan span("obstest/off"); }
  obs::trace_instant("obstest/off");
  EXPECT_EQ(obs::Tracer::instance().events_emitted(), 0u);
  const std::string json = obs::Tracer::instance().dump_json();
  EXPECT_NE(json.find("\"traceEvents\": []"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hardware counters.

TEST(ObsPerf, UnopenedCountersReadInvalidAndReportNothing) {
  obs::PerfCounters pc(/*open=*/false);
  EXPECT_FALSE(pc.available());
  pc.start();  // all no-ops on closed fds
  pc.stop();
  const auto r = pc.read();
  for (int i = 0; i < obs::PerfCounters::kEvents; ++i) {
    EXPECT_FALSE(r.valid[i]);
    EXPECT_EQ(r.value[i], 0u);
  }
  pc.report("obstest-none");
  EXPECT_EQ(obs::registry().dump_text().find("perf/obstest-none"),
            std::string::npos);
}

TEST(ObsPerf, OpenEitherCountsOrDegradesGracefully) {
  // perf_event_open commonly fails in CI containers; both outcomes are
  // in-contract. What must not happen is a crash or a valid-but-zero read.
  obs::PerfCounters pc;
  pc.start();
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i;
  pc.stop();
  const auto r = pc.read();
  if (pc.available()) {
    bool any = false;
    for (int i = 0; i < obs::PerfCounters::kEvents; ++i) any |= r.valid[i];
    EXPECT_TRUE(any);
  } else {
    for (int i = 0; i < obs::PerfCounters::kEvents; ++i) {
      EXPECT_FALSE(r.valid[i]);
    }
  }
}

TEST(ObsPerf, PerfCellIsNoOpWhenNotRequested) {
  // MVCC_PERF is unset in the test environment, so the cell never opens
  // counters and never reports.
  { obs::PerfCell cell("obstest-cell"); }
  EXPECT_EQ(obs::registry().dump_text().find("perf/obstest-cell"),
            std::string::npos);
}

TEST(ObsBatchingE2E, DisabledMeansNoRecording) {
  obs::set_enabled(false);
  obs::LatencyHistogram& commit_lat =
      obs::registry().histogram("txn/commit_latency_ns");
  const std::uint64_t lat0 = commit_lat.count();
  {
    PswfMap map(1, {});
    for (std::uint64_t i = 0; i < 50; ++i) map.upsert_sync(0, i, i);
  }
  EXPECT_EQ(commit_lat.count(), lat0);
}

}  // namespace
